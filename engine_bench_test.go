// BenchmarkEngine measures the sharded throughput engine's scaling curve:
// the same 64-block CTR message is pushed through pools of 1, 2, 4 and 8
// replicated cores, and each sub-benchmark reports the aggregate
// steady-state cycles-per-block (makespan over blocks — the hardware-time
// cost of the pool) plus the paper-metric throughput at the timing-closed
// clock. Near-linear scaling shows up as cycles/block halving with each
// doubling of the shard count. MaxLanes is pinned to 1 so the curve stays
// a pure shard-scaling measurement; BenchmarkVectorLanes sweeps the lane
// axis (and the shards × lanes grid).
//
// Run the smoke version with `make bench-smoke`; `make bench-json` writes
// the whole grid to BENCH_engine.json for cross-PR tracking.
package rijndaelip_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"rijndaelip"
	"rijndaelip/internal/chaos"
)

// benchRow is one machine-readable benchmark sample for BENCH_engine.json.
// The chaos/recovery counters are only populated by supervised runs
// (BenchmarkChaosRecovery) and omitted everywhere else.
type benchRow struct {
	Bench          string  `json:"bench"`
	Mode           string  `json:"mode"`
	Shards         int     `json:"shards"`
	Lanes          int     `json:"lanes"`
	Blocks         uint64  `json:"blocks"`
	CyclesPerBlock float64 `json:"cycles_per_block"`
	Mbps           float64 `json:"mbps"`
	BlocksPerSec   float64 `json:"blocks_per_sec"`

	Strikes         uint64 `json:"strikes,omitempty"`
	Detections      uint64 `json:"detections,omitempty"`
	Retries         uint64 `json:"retries,omitempty"`
	Quarantines     uint64 `json:"quarantines,omitempty"`
	Respawns        uint64 `json:"respawns,omitempty"`
	RespawnFailures uint64 `json:"respawn_failures,omitempty"`
	FallbackBlocks  uint64 `json:"fallback_blocks,omitempty"`

	// Triage and ROM-integrity counters (supervised runs only).
	Transients         uint64 `json:"transients,omitempty"`
	Persistents        uint64 `json:"persistents,omitempty"`
	InPlaceRecoveries  uint64 `json:"in_place_recoveries,omitempty"`
	Escalations        uint64 `json:"escalations,omitempty"`
	ScrubSweeps        uint64 `json:"scrub_sweeps,omitempty"`
	ScrubCorrected     uint64 `json:"scrub_corrected,omitempty"`
	ScrubUncorrectable uint64 `json:"scrub_uncorrectable,omitempty"`
}

// benchRows accumulates samples across benchmarks; TestMain flushes them
// to the path named by BENCH_JSON after the run (benchmarks execute
// sequentially, so no locking is needed).
var benchRows []benchRow

// TestMain writes the collected benchmark grid as JSON when BENCH_JSON
// names an output file (the `make bench-json` flow). Plain test runs are
// untouched.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && len(benchRows) > 0 {
		data, err := json.MarshalIndent(benchRows, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// benchReport publishes the standard engine metrics for one sub-benchmark
// and records the JSON row.
func benchReport(b *testing.B, eng *rijndaelip.Engine, bench, mode string, shards, lanes int) *benchRow {
	st := eng.Stats()
	blocksPerSec := float64(st.Blocks) / b.Elapsed().Seconds()
	b.ReportMetric(st.AggregateCyclesPerBlock, "cycles/block")
	b.ReportMetric(eng.Throughput(), "Mbps")
	b.ReportMetric(blocksPerSec, "blocks/s")
	benchRows = append(benchRows, benchRow{
		Bench:           bench,
		Mode:            mode,
		Shards:          shards,
		Lanes:           lanes,
		Blocks:          st.Blocks,
		CyclesPerBlock:  st.AggregateCyclesPerBlock,
		Mbps:            eng.Throughput(),
		BlocksPerSec:    blocksPerSec,
		Detections:      st.Detections,
		Retries:         st.Retries,
		Quarantines:     st.Quarantines,
		Respawns:        st.Respawns,
		RespawnFailures: st.RespawnFailures,
		FallbackBlocks:  st.FallbackBlocks,

		Transients:         st.Transients,
		Persistents:        st.Persistents,
		InPlaceRecoveries:  st.InPlaceRecoveries,
		Escalations:        st.Escalations,
		ScrubSweeps:        st.ScrubSweeps,
		ScrubCorrected:     st.ScrubCorrected,
		ScrubUncorrectable: st.ScrubUncorrectable,
	})
	return &benchRows[len(benchRows)-1]
}

func BenchmarkEngine(b *testing.B) {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		b.Fatal(err)
	}
	key := []byte("bench-engine-key")
	iv := bytes.Repeat([]byte{0x24}, 16)
	msg := make([]byte, 64*16)
	for i := range msg {
		msg[i] = byte(i * 3)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ctr/shards=%d", shards), func(b *testing.B) {
			eng, err := impl.NewEngine(key, rijndaelip.EngineOptions{Shards: shards, MaxLanes: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.CTR(context.Background(), iv, msg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			benchReport(b, eng, "engine", "ctr", shards, 1)
			st := eng.Stats()
			var stolen uint64
			for _, ss := range st.Shards {
				stolen += ss.Stolen
			}
			b.ReportMetric(float64(stolen)/float64(b.N), "stolen/op")
		})
	}
}

// BenchmarkVectorLanes sweeps the shards × lanes grid: the same 64-block
// ECB message through 1/2/4/8 shards at 1/16/64 blocks packed per
// lane-parallel submission. The lanes=1 rows are the scalar baseline; the
// lanes=64 single-shard row is the acceptance gate (>= 10x blocks/sec over
// scalar), and the corners show that lanes and shards compound.
func BenchmarkVectorLanes(b *testing.B) {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		b.Fatal(err)
	}
	key := []byte("bench-engine-key")
	msg := make([]byte, 64*16)
	for i := range msg {
		msg[i] = byte(i * 5)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, lanes := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("ecb/shards=%d/lanes=%d", shards, lanes), func(b *testing.B) {
				eng, err := impl.NewEngine(key, rijndaelip.EngineOptions{Shards: shards, MaxLanes: lanes})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.EncryptECB(context.Background(), msg); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				benchReport(b, eng, "vector_lanes", "ecb", shards, lanes)
			})
		}
	}
}

// BenchmarkChaosRecovery measures the supervised engine's throughput with
// the recovery machinery live: sub-benchmark "faultfree" is a supervised
// 4-shard pool with no strikes and no scrubber (the cost of lockstep
// supervision itself), "scrub" adds an aggressive background ROM scrubber
// to the strike-free pool (the faultfree/scrub pair is the EXPERIMENTS.md
// scrub-overhead measurement), and "chaos" adds seeded strikes about once
// per 5 submissions, so the rows in BENCH_engine.json track the recovery
// tax (detection → triage retry → quarantine → hot-respawn) across PRs,
// alongside the detections/triage/scrub counters.
func BenchmarkChaosRecovery(b *testing.B) {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		b.Fatal(err)
	}
	key := []byte("bench-chaos-key0")
	msg := make([]byte, 64*16)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	cases := []struct {
		name    string
		strikes bool
		scrub   time.Duration
	}{
		{"faultfree", false, -1},
		{"scrub", false, 100 * time.Microsecond},
		{"chaos", true, -1},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			sup := &rijndaelip.SupervisorOptions{
				Check:         rijndaelip.CheckLockstep,
				ScrubInterval: tc.scrub,
			}
			var inj *chaos.Injector
			if tc.strikes {
				inj = chaos.NewInjector(chaos.Config{Seed: 42, Period: 5}, impl.Core.BlockLatency)
				sup.Strike = inj.Strike
			}
			eng, err := impl.NewEngine(key, rijndaelip.EngineOptions{
				Shards:    4,
				MaxLanes:  8,
				Supervise: sup,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.EncryptECB(context.Background(), msg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			row := benchReport(b, eng, "chaos_recovery", tc.name, 4, 8)
			if inj != nil {
				row.Strikes = inj.Strikes()
				b.ReportMetric(float64(row.Strikes)/float64(b.N), "strikes/op")
			}
		})
	}
}
