package rijndaelip_test

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"

	"rijndaelip"
	"rijndaelip/internal/rtl"
)

// TestPostSynthesisSignoff runs full bus transactions against gate-level
// simulations of the technology-mapped netlists — every variant on both
// device styles — and demands bit-exact agreement with the software
// reference and the RTL latency. This is the strongest functional claim
// the flow makes: the netlist whose area and timing we report is the
// netlist that computes AES.
func TestPostSynthesisSignoff(t *testing.T) {
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	pt, _ := hex.DecodeString("3243f6a8885a308d313198a2e0370734")
	ct, _ := hex.DecodeString("3925841d02dc09fbdc118597196a0b32")

	for _, v := range []rijndaelip.Variant{rijndaelip.Encrypt, rijndaelip.Decrypt, rijndaelip.Both} {
		for _, dev := range []rijndaelip.Device{rijndaelip.Acex1K(), rijndaelip.Cyclone()} {
			v, dev := v, dev
			t.Run(v.String()+"/"+dev.Family, func(t *testing.T) {
				impl, err := rijndaelip.Build(v, dev)
				if err != nil {
					t.Fatal(err)
				}
				drv, err := impl.NewPostSynthesisDriver()
				if err != nil {
					t.Fatal(err)
				}
				if _, err := drv.LoadKey(key); err != nil {
					t.Fatal(err)
				}
				if v != rijndaelip.Decrypt {
					got, cycles, err := drv.Encrypt(pt)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, ct) {
						t.Fatalf("mapped netlist encrypt = %x, want %x", got, ct)
					}
					if cycles != impl.Core.BlockLatency {
						t.Errorf("mapped latency %d, want %d", cycles, impl.Core.BlockLatency)
					}
				}
				if v != rijndaelip.Encrypt {
					got, _, err := drv.Decrypt(ct)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, pt) {
						t.Fatalf("mapped netlist decrypt = %x, want %x", got, pt)
					}
				}
			})
		}
	}
}

// TestPostSynthesisRandomAgainstRTL runs random vectors through both the
// RTL and the mapped netlist of the sync-ROM variant (the trickiest
// timing) and cross-checks every result.
func TestPostSynthesisRandomAgainstRTL(t *testing.T) {
	style := rtl.ROMSync
	impl, err := rijndaelip.Build(rijndaelip.Both, rijndaelip.Cyclone(),
		rijndaelip.Options{ROMStyle: &style})
	if err != nil {
		t.Fatal(err)
	}
	rtlDrv := impl.NewDriver()
	mapDrv, err := impl.NewPostSynthesisDriver()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		key := make([]byte, 16)
		rng.Read(key)
		if _, err := rtlDrv.LoadKey(key); err != nil {
			t.Fatal(err)
		}
		if _, err := mapDrv.LoadKey(key); err != nil {
			t.Fatal(err)
		}
		for blk := 0; blk < 2; blk++ {
			data := make([]byte, 16)
			rng.Read(data)
			enc := rng.Intn(2) == 0
			a, _, err := rtlDrv.Process(data, enc)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := mapDrv.Process(data, enc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("RTL %x != mapped %x (enc=%v key=%x data=%x)", a, b, enc, key, data)
			}
		}
	}
}
