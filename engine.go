package rijndaelip

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rijndaelip/internal/aes"
	"rijndaelip/internal/bfm"
	"rijndaelip/internal/edac"
	"rijndaelip/internal/faultcampaign"
	"rijndaelip/internal/modes"
	"rijndaelip/internal/netlist"
	"rijndaelip/internal/obs"
)

// Engine is a sharded hardware throughput pool: N independent
// cycle-accurate simulations of the same generated IP core, each behind
// its own bus-functional driver keyed once at construction, fed by a
// work-stealing block scheduler. The paper's decoupled Data-In / Rijndael
// / Data-Out processes let one core sustain back-to-back blocks; the
// engine scales past a single core the way a board full of the paper's
// low-occupation IPs would — by replicating the device and fanning
// independent blocks across the replicas.
//
// Scheduling model: Process packs up to MaxLanes consecutive blocks into
// one lane-parallel submission (the simulators carry 64 independent lanes
// per sweep, so a packed submission costs the same simulated cycles as a
// single block — see internal/logic/lanes.go), round-robins submissions
// onto bounded per-shard queues (a full queue blocks the submitter — that
// is the backpressure boundary), each shard drains its own queue first,
// and an idle shard steals queued submissions from its siblings so a
// transient imbalance never leaves a replica dark. Output ordering always
// matches input ordering: results are written to their submission slot,
// not to a completion-order stream. Lanes and shards compound: 8 shards ×
// 64 lanes keep 512 blocks in flight.
//
// Which modes parallelize: ECB and the CTR keystream are embarrassingly
// parallel, and CBC decryption is too (every plaintext block is
// D(C_i) XOR C_{i-1} with both operands known up front). CBC and CFB
// encryption chain each input on the previous output, so they fall back
// to sequential block-at-a-time streaming through the pool.
type Engine struct {
	impl    *Implementation
	opts    EngineOptions
	factory *bfm.KeyedFactory
	shards  []*engineShard

	// sup is the normalized supervision policy, nil for a plain engine.
	// soft is the software reference cipher the supervised recovery ladder
	// falls back to (built only when supervision is armed).
	sup  *SupervisorOptions
	soft *aes.Cipher

	// wake is poked (non-blocking) on every submission so parked shards
	// re-run their steal scan instead of waiting on their own queue alone.
	wake   chan struct{}
	closed chan struct{}

	// mu guards the closed flag against racing submissions: Close takes
	// the write side after which no submit can enqueue, so draining the
	// queues at shutdown cannot strand a job.
	mu       sync.RWMutex
	isClosed bool
	wg       sync.WaitGroup
	rr       atomic.Uint64

	// Engine-level supervision counters (see EngineStats). Only counters
	// with no per-shard twin live here: everything that can be attributed
	// to a shard is counted on the shard and summed by Stats in one pass,
	// so a snapshot cannot tear between an aggregate and its parts.
	retries         atomic.Uint64
	respawnFailures atomic.Uint64
	fallbackBlocks  atomic.Uint64
	escalations     atomic.Uint64

	// reg and ring are the observability surface: a metrics registry
	// (counters/gauges/latency histograms over the pool) and the bounded
	// event-trace ring recording every supervision/triage transition.
	// Both nil when EngineOptions.DisableObs.
	reg  *obs.Registry
	ring *obs.Ring

	// diagnoses is the persistent-fault localization log (see Diagnoses).
	diagMu    sync.Mutex
	diagnoses []Diagnosis
}

// EngineOptions tunes the shard pool.
// SimBackend selects the evaluation backend of the cycle simulators an
// engine's shards run on. The zero value is SimCompiled: shards simulate
// through the fused instruction tape with activity-gated cycle skipping,
// which the differential equivalence suite holds bit-identical to the
// interpreter (net values, fault semantics and EDAC counters included).
type SimBackend int

// Evaluation backends.
const (
	// SimCompiled compiles the netlist/RTL evaluation order into a flat
	// word-op tape at construction and skips quiescent logic cones per
	// cycle. The default.
	SimCompiled SimBackend = iota
	// SimInterpreted walks the levelized order through the original
	// switch-dispatch interpreter every cycle. Kept selectable for A/B
	// equivalence and performance comparisons.
	SimInterpreted
)

// String names the backend the way the bench grid's sim column does.
func (b SimBackend) String() string {
	if b == SimInterpreted {
		return "interpreted"
	}
	return "compiled"
}

type EngineOptions struct {
	// Shards is the number of replicated core instances. Default 1.
	Shards int
	// QueueDepth bounds each shard's queue; a submitter that finds every
	// slot of the chosen queue full blocks until the pool catches up
	// (backpressure) or its context is cancelled. Default 2.
	QueueDepth int
	// MaxLanes caps how many blocks one submission packs into the
	// simulator's 64 parallel lanes. Default (0) and any value above
	// bfm.Lanes mean full packing (64); 1 forces scalar one-block
	// submissions, which scheduler-behavior tests use to keep per-block
	// queueing observable.
	MaxLanes int
	// Jitter, when set, is invoked before each block is processed with the
	// executing shard and the block's submission index. Tests use it to
	// inject per-shard latency skew and prove result ordering survives
	// out-of-order completion. Leave nil in production.
	Jitter func(shard, index int)
	// Watchdog overrides every shard driver's cycle budget for hung
	// transactions (0 keeps the driver's 4x-latency default).
	Watchdog int
	// Supervise arms the per-shard supervision layer (detect → re-queue →
	// quarantine → hot-respawn → degrade); see SupervisorOptions. A
	// supervised engine simulates the technology-mapped netlist on every
	// shard instead of the RTL, so fault campaigns and chaos harnesses can
	// strike real flip-flops of live shards.
	Supervise *SupervisorOptions
	// DisableObs turns off the metrics registry and event-trace ring.
	// The default (observability on) costs only atomic increments and two
	// clock reads per submission; the overhead gate in bench-smoke holds
	// it under 5%. Disable only for A/B overhead measurements.
	DisableObs bool
	// TraceDepth is the event-trace ring capacity (default 1024 events;
	// the ring overwrites oldest-first when full).
	TraceDepth int
	// Backend selects the shard simulators' evaluation backend. The zero
	// value (SimCompiled) runs the compiled tape with activity gating on
	// every shard — RTL clones on a plain engine, post-synthesis netlist
	// simulations (and lockstep shadows) on a supervised one.
	Backend SimBackend
}

// ErrEngineClosed is returned for blocks submitted after Close.
var ErrEngineClosed = errors.New("rijndaelip: engine closed")

type engineShard struct {
	id int

	// state is the supervision lifecycle (healthy / quarantined / dead);
	// unsupervised engines keep every shard healthy forever. drv, sim and
	// lock are written at construction and by the respawner while the
	// shard is quarantined; the worker reads them only while the shard is
	// healthy, so the atomic state transitions order the accesses.
	state atomic.Int32
	gen   atomic.Uint64
	drv   *bfm.VectorDriver
	sim   *netlist.Simulator            // primary mapped simulation (supervised only)
	lock  *faultcampaign.VectorLockstep // shadow comparator (CheckLockstep only)

	// runMu serializes transaction execution (worker) with replacement
	// driver installation (respawner): a scrubber-initiated quarantine can
	// start a respawn while the worker is still mid-transaction, and the
	// two must not race on drv/sim/lock/transientLog.
	runMu sync.Mutex

	// stores publishes the primary simulation's EDAC ROM stores (type
	// []*edac.ROM) to the background scrubber, which runs on its own
	// goroutine and must not read the drv/sim fields.
	stores atomic.Value

	// transientLog holds the submission ordinals of this incarnation's
	// transient classifications (the sliding-window error budget). Touched
	// only under runMu; reset by respawn.
	transientLog []uint64

	// lat is the submit→complete wall-clock latency histogram of jobs this
	// shard delivered (nil when observability is disabled).
	lat *obs.Histogram

	q           chan *engineJob
	blocks      atomic.Uint64
	cycles      atomic.Uint64
	stolen      atomic.Uint64
	submissions atomic.Uint64
	wasted      atomic.Uint64
	detections  atomic.Uint64
	quarantines atomic.Uint64
	respawns    atomic.Uint64

	// Triage and scrub counters (per-shard shares of the engine totals),
	// plus the EDAC read counters folded from retired store generations.
	transients           atomic.Uint64
	persistents          atomic.Uint64
	inPlace              atomic.Uint64
	scrubSweeps          atomic.Uint64
	scrubCorrected       atomic.Uint64
	scrubUncorrectable   atomic.Uint64
	romCorrectedBase     atomic.Uint64
	romUncorrectableBase atomic.Uint64
}

// publishStores exposes the primary sim's EDAC stores to the scrubber.
func (s *engineShard) publishStores() {
	if s.sim != nil {
		s.stores.Store(s.sim.ROMStores())
	}
}

// foldROMStats accumulates the retiring stores' EDAC read counters into
// the shard's base counters before a respawn replaces them, so the
// per-shard totals survive generation changes.
func (s *engineShard) foldROMStats() {
	stores, _ := s.stores.Load().([]*edac.ROM)
	for _, r := range stores {
		st := r.Stats()
		s.romCorrectedBase.Add(st.CorrectedReads)
		s.romUncorrectableBase.Add(st.UncorrectableReads)
	}
}

// romReadStats returns the shard's lifetime EDAC read counters: the folded
// base plus the live stores' counts.
func (s *engineShard) romReadStats() (corrected, uncorrectable uint64) {
	corrected = s.romCorrectedBase.Load()
	uncorrectable = s.romUncorrectableBase.Load()
	stores, _ := s.stores.Load().([]*edac.ROM)
	for _, r := range stores {
		st := r.Stats()
		corrected += st.CorrectedReads
		uncorrectable += st.UncorrectableReads
	}
	return corrected, uncorrectable
}

// engineJob is one lane-packed submission: n consecutive 16-byte blocks
// (n in [1, MaxLanes]) that ride one protocol transaction, block i on
// lane i. attempt counts supervised re-queues after detections; it is
// only touched by the worker currently executing the job (handoffs ride
// the shard queues, which order the accesses).
type engineJob struct {
	index   int
	n       int
	src     []byte
	dst     []byte
	encrypt bool
	batch   *engineBatch
	attempt int
	// start is the submission instant (UnixNano) feeding the per-shard
	// submit→complete latency histogram; 0 when observability is off.
	start int64
}

// observe records the job's submit→complete latency on the delivering
// shard's histogram. Called on the worker goroutine at completion.
func (s *engineShard) observe(j *engineJob) {
	if s.lat != nil && j.start != 0 {
		s.lat.Observe(time.Duration(time.Now().UnixNano() - j.start))
	}
}

// engineBatch tracks one Process call's fan-out: jobs decrement remaining
// as they complete (successfully or not) and the last one home closes
// done. The first error wins.
type engineBatch struct {
	remaining atomic.Int64
	done      chan struct{}
	mu        sync.Mutex
	err       error
	jitter    func(shard, index int)
}

func (b *engineBatch) complete(err error) {
	if err != nil {
		b.mu.Lock()
		if b.err == nil {
			b.err = err
		}
		b.mu.Unlock()
	}
	if b.remaining.Add(-1) == 0 {
		close(b.done)
	}
}

// NewEngine clones the implementation's core into opts.Shards independent
// keyed simulations (each paying the key-setup walk exactly once) and
// starts one scheduler worker per shard. Close releases the workers.
func (im *Implementation) NewEngine(key []byte, opts EngineOptions) (*Engine, error) {
	if opts.Shards <= 0 {
		opts.Shards = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 2
	}
	if opts.MaxLanes <= 0 || opts.MaxLanes > bfm.Lanes {
		opts.MaxLanes = bfm.Lanes
	}
	factory, err := bfm.NewKeyedFactory(im.Core, key)
	if err != nil {
		return nil, err
	}
	factory.Compiled = opts.Backend == SimCompiled
	sup, err := normalizedSupervisor(im, opts.Supervise)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		impl:    im,
		opts:    opts,
		factory: factory,
		sup:     sup,
		wake:    make(chan struct{}, opts.Shards),
		closed:  make(chan struct{}),
	}
	if !opts.DisableObs {
		e.reg = obs.NewRegistry()
		e.ring = obs.NewRing(opts.TraceDepth)
	}
	if sup != nil {
		soft, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		e.soft = soft
	}
	for i := 0; i < opts.Shards; i++ {
		s := &engineShard{
			id: i,
			q:  make(chan *engineJob, opts.QueueDepth),
		}
		s.drv, s.sim, s.lock, err = e.buildDriver()
		if err != nil {
			return nil, fmt.Errorf("rijndaelip: engine shard %d: %w", i, err)
		}
		s.gen.Store(1)
		s.publishStores()
		e.shards = append(e.shards, s)
	}
	e.registerMetrics()
	for _, s := range e.shards {
		e.wg.Add(1)
		go e.worker(s)
	}
	if sup != nil && sup.ScrubInterval > 0 {
		for _, s := range e.shards {
			e.wg.Add(1)
			go e.scrubber(s)
		}
	}
	return e, nil
}

// registerMetrics publishes the pool's counters, gauges and latency
// histograms on the engine registry. Everything except the histograms is
// func-backed over the atomics the engine already maintains, so scrapes
// read live values and the hot path pays nothing beyond its existing
// atomic increments.
func (e *Engine) registerMetrics() {
	if e.reg == nil {
		return
	}
	for _, s := range e.shards {
		s := s
		l := []string{"shard", strconv.Itoa(s.id)}
		s.lat = e.reg.Histogram("aesip_engine_submit_latency_ns", l...)
		e.reg.CounterFunc("aesip_engine_blocks_total", s.blocks.Load, l...)
		e.reg.CounterFunc("aesip_engine_cycles_total", s.cycles.Load, l...)
		e.reg.CounterFunc("aesip_engine_submissions_total", s.submissions.Load, l...)
		e.reg.CounterFunc("aesip_engine_steals_total", s.stolen.Load, l...)
		e.reg.CounterFunc("aesip_engine_detections_total", s.detections.Load, l...)
		e.reg.CounterFunc("aesip_engine_quarantines_total", s.quarantines.Load, l...)
		e.reg.CounterFunc("aesip_engine_respawns_total", s.respawns.Load, l...)
		e.reg.CounterFunc("aesip_engine_transients_total", s.transients.Load, l...)
		e.reg.CounterFunc("aesip_engine_persistents_total", s.persistents.Load, l...)
		e.reg.CounterFunc("aesip_engine_scrub_corrected_total", s.scrubCorrected.Load, l...)
		e.reg.CounterFunc("aesip_engine_scrub_uncorrectable_total", s.scrubUncorrectable.Load, l...)
		e.reg.GaugeFunc("aesip_engine_queue_depth", func() float64 { return float64(len(s.q)) }, l...)
		e.reg.GaugeFunc("aesip_engine_shard_health", func() float64 { return float64(s.state.Load()) }, l...)
		e.reg.GaugeFunc("aesip_engine_shard_generation", func() float64 { return float64(s.gen.Load()) }, l...)
	}
	e.reg.CounterFunc("aesip_engine_retries_total", e.retries.Load)
	e.reg.CounterFunc("aesip_engine_escalations_total", e.escalations.Load)
	e.reg.CounterFunc("aesip_engine_respawn_failures_total", e.respawnFailures.Load)
	e.reg.CounterFunc("aesip_engine_fallback_blocks_total", e.fallbackBlocks.Load)
	e.reg.GaugeFunc("aesip_engine_healthy_shards", func() float64 {
		n := 0
		for _, s := range e.shards {
			if s.state.Load() == shardHealthy {
				n++
			}
		}
		return float64(n)
	})
}

// Metrics returns the engine's metrics registry, for exposition via
// obs.Handler/obs.Serve or direct snapshots. Nil when
// EngineOptions.DisableObs was set.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Trace returns the engine's bounded event-trace ring: every
// supervision/triage transition (detection, retry, classification,
// quarantine, respawn, scrub correction, fallback) in emission order.
// Nil when EngineOptions.DisableObs was set.
func (e *Engine) Trace() *obs.Ring { return e.ring }

// emit records one trace event if the ring is armed.
func (e *Engine) emit(ev obs.Event) {
	if e.ring != nil {
		e.ring.Emit(ev)
	}
}

// Close stops the shard workers and waits for them to exit. Outstanding
// Process calls complete (already-queued blocks are failed with
// ErrEngineClosed rather than stranded); new submissions are rejected.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.isClosed {
		e.mu.Unlock()
		return
	}
	e.isClosed = true
	close(e.closed)
	e.mu.Unlock()
	e.wg.Wait()
}

// submit places one job on a healthy shard's queue, blocking for
// backpressure. The read lock is held across the send so Close cannot
// declare the engine closed while a job is in flight toward a queue. When
// every shard is quarantined or dead it returns errNoHealthyShard so the
// submitter can degrade to the software reference instead of stalling. (A
// shard that is quarantined after we picked it is harmless: its worker
// redistributes queue arrivals while unhealthy.)
func (e *Engine) submit(ctx context.Context, j *engineJob) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.isClosed {
		return ErrEngineClosed
	}
	start := int(e.rr.Add(1) - 1)
	var s *engineShard
	for off := 0; off < len(e.shards); off++ {
		if c := e.shards[(start+off)%len(e.shards)]; c.state.Load() == shardHealthy {
			s = c
			break
		}
	}
	if s == nil {
		return errNoHealthyShard
	}
	select {
	case s.q <- j:
		e.poke()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) poke() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

func (e *Engine) worker(s *engineShard) {
	defer e.wg.Done()
	for {
		if s.state.Load() == shardHealthy {
			// Fast path: the shard's own queue.
			select {
			case j := <-s.q:
				e.run(s, j)
				continue
			default:
			}
			// Idle: steal from a sibling before parking.
			if e.trySteal(s) {
				continue
			}
		}
		select {
		case j := <-s.q:
			// run redistributes the job if this shard is not healthy, so
			// a submission that raced onto a quarantined queue can never
			// stall or touch sick hardware.
			e.run(s, j)
		case <-e.wake:
			// A submission landed somewhere; rescan.
		case <-e.closed:
			e.drain(s)
			return
		}
	}
}

// trySteal claims one queued block from a sibling shard. Only surplus
// work is stolen — a victim queue holding a single block keeps it for its
// owner. Stealing the last block from a momentarily descheduled (but
// otherwise idle) owner would concentrate the workload on whichever
// shards woke first and inflate the pool's makespan; the surplus rule
// keeps every replica lit while still draining genuine backlogs. (The
// length check races with other thieves, which is harmless: the worst
// case is stealing what just became the last block.)
func (e *Engine) trySteal(s *engineShard) bool {
	for off := 1; off < len(e.shards); off++ {
		victim := e.shards[(s.id+off)%len(e.shards)]
		if len(victim.q) < 2 {
			continue
		}
		select {
		case j := <-victim.q:
			s.stolen.Add(1)
			e.run(s, j)
			return true
		default:
		}
	}
	return false
}

// drain fails any block still queued at shutdown so its batch completes.
func (e *Engine) drain(s *engineShard) {
	for {
		select {
		case j := <-s.q:
			j.batch.complete(ErrEngineClosed)
		default:
			return
		}
	}
}

func (e *Engine) run(s *engineShard, j *engineJob) {
	if s.state.Load() != shardHealthy {
		// The job raced onto a quarantined (or dead) shard's queue; hand
		// it to a healthy sibling instead of trusting sick hardware.
		e.redistribute(j)
		return
	}
	if e.sup != nil {
		e.runSupervised(s, j)
		return
	}
	if j.batch.jitter != nil {
		j.batch.jitter(s.id, j.index)
	}
	blocks := make([][]byte, j.n)
	for i := range blocks {
		blocks[i] = j.src[i*16 : i*16+16]
	}
	outs, cycles, err := s.drv.ProcessVector(blocks, j.encrypt)
	// +1 accounts the wr_data load edge, which ProcessVector steps before
	// it starts counting completion-wait cycles. The cycle cost is per
	// submission, not per block: all j.n lanes share one transaction.
	s.cycles.Add(uint64(cycles) + 1)
	s.submissions.Add(1)
	if err == nil {
		s.blocks.Add(uint64(j.n))
		s.wasted.Add(uint64(e.opts.MaxLanes - j.n))
		for i, out := range outs {
			copy(j.dst[i*16:i*16+16], out)
		}
		s.observe(j)
	} else {
		// Identify the failing shard, preserving driver sentinels
		// (bfm.ErrTimeout, bfm.ErrLatency) for errors.Is through
		// Process/EngineBlock.
		err = fmt.Errorf("rijndaelip: engine shard %d: %w", s.id, err)
	}
	j.batch.complete(err)
}

// process packs the concatenated 16-byte blocks of src into lane groups
// of up to MaxLanes, fans the groups across the shard pool, and writes
// each result into the matching offset of dst. It returns after every
// submitted group has completed; ctx cancels groups that are still
// waiting for queue space (in-flight transactions always finish — a bus
// transaction is bounded by the driver watchdog).
func (e *Engine) process(ctx context.Context, dst, src []byte, encrypt bool) error {
	if len(src)%16 != 0 || len(dst) < len(src) {
		return fmt.Errorf("rijndaelip: engine: need whole blocks and dst >= src, got src=%d dst=%d",
			len(src), len(dst))
	}
	n := len(src) / 16
	if n == 0 {
		return nil
	}
	lanes := e.opts.MaxLanes
	nJobs := (n + lanes - 1) / lanes
	batch := &engineBatch{done: make(chan struct{}), jitter: e.opts.Jitter}
	batch.remaining.Store(int64(nJobs))
	var submitErr error
	for i := 0; i < nJobs; i++ {
		lo := i * lanes
		hi := min(lo+lanes, n)
		j := &engineJob{
			index:   i,
			n:       hi - lo,
			src:     src[lo*16 : hi*16],
			dst:     dst[lo*16 : hi*16],
			encrypt: encrypt,
			batch:   batch,
		}
		if e.reg != nil {
			j.start = time.Now().UnixNano()
		}
		if err := e.submit(ctx, j); err != nil {
			if e.sup != nil && errors.Is(err, errNoHealthyShard) {
				// Engine-wide degradation: every replica is quarantined or
				// dead, so this job is served by the software reference —
				// callers never see corrupted data or a stalled pipeline.
				e.fallback(j)
				continue
			}
			submitErr = err
			// This job and everything after it never ran; settle their
			// share of the batch so done can close once the submitted
			// prefix finishes.
			if batch.remaining.Add(int64(-(nJobs - i))) == 0 {
				close(batch.done)
			}
			break
		}
	}
	<-batch.done
	if submitErr != nil {
		return submitErr
	}
	batch.mu.Lock()
	defer batch.mu.Unlock()
	return batch.err
}

// Process runs independent 16-byte blocks through the pool, preserving
// order: result i is the transformation of blocks[i].
func (e *Engine) Process(ctx context.Context, blocks [][]byte, encrypt bool) ([][]byte, error) {
	src := make([]byte, 0, len(blocks)*16)
	for i, b := range blocks {
		if len(b) != 16 {
			return nil, fmt.Errorf("rijndaelip: engine: block %d is %d bytes, want 16", i, len(b))
		}
		src = append(src, b...)
	}
	dst := make([]byte, len(src))
	if err := e.process(ctx, dst, src, encrypt); err != nil {
		return nil, err
	}
	outs := make([][]byte, len(blocks))
	for i := range outs {
		outs[i] = dst[i*16 : i*16+16 : i*16+16]
	}
	return outs, nil
}

// EngineBlock adapts the shard pool to the modes.Block interface, so every
// protocol in internal/modes runs over the replicated hardware. It also
// implements modes.BatchBlock: the mode helpers hand independent-block
// work (ECB, the CTR keystream, CBC decryption) to the pool in one call,
// which is where the parallel speedup comes from; single-block calls
// still go through the scheduler, one shard busy at a time.
//
// Like HardwareBlock, protocol errors surface via Err (the Block
// interface has no error returns) and the affected output is zeroed.
// EngineBlock is safe for concurrent use.
type EngineBlock struct {
	e   *Engine
	ctx context.Context

	mu  sync.Mutex
	err error
}

// Block returns a modes.Block adapter over the pool with a background
// context.
func (e *Engine) Block() *EngineBlock { return e.BlockContext(context.Background()) }

// BlockContext returns a modes.Block adapter whose submissions are bounded
// by ctx.
func (e *Engine) BlockContext(ctx context.Context) *EngineBlock {
	return &EngineBlock{e: e, ctx: ctx}
}

// BlockSize returns 16.
func (b *EngineBlock) BlockSize() int { return 16 }

// Err returns the first engine error encountered through this adapter.
func (b *EngineBlock) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

func (b *EngineBlock) record(err error) error {
	if err != nil {
		b.mu.Lock()
		if b.err == nil {
			b.err = err
		}
		b.mu.Unlock()
	}
	return err
}

func (b *EngineBlock) one(dst, src []byte, encrypt bool) {
	if len(src) < 16 || len(dst) < 16 {
		b.record(fmt.Errorf("rijndaelip: engine block: need 16-byte src and dst, got src=%d dst=%d",
			len(src), len(dst)))
		zeroBlock(dst)
		return
	}
	if b.record(b.e.process(b.ctx, dst[:16], src[:16], encrypt)) != nil {
		zeroBlock(dst)
	}
}

// Encrypt runs one block through the pool in the encrypt direction.
func (b *EngineBlock) Encrypt(dst, src []byte) { b.one(dst, src, true) }

// Decrypt runs one block through the pool in the decrypt direction.
func (b *EngineBlock) Decrypt(dst, src []byte) { b.one(dst, src, false) }

// EncryptBlocks fans the concatenated independent blocks of src across
// the shard pool (modes.BatchBlock).
func (b *EngineBlock) EncryptBlocks(dst, src []byte) error {
	return b.record(b.e.process(b.ctx, dst, src, true))
}

// DecryptBlocks is the decrypt-direction counterpart of EncryptBlocks.
func (b *EngineBlock) DecryptBlocks(dst, src []byte) error {
	return b.record(b.e.process(b.ctx, dst, src, false))
}

// blockErr folds an EngineBlock's recorded error into a mode result.
func blockErr(out []byte, err error, blk *EngineBlock) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	if blkErr := blk.Err(); blkErr != nil {
		return nil, blkErr
	}
	return out, nil
}

// CTR XORs src (any length) with the counter-mode keystream derived from
// the 16-byte iv. The keystream blocks are independent, so they fan out
// across all shards — the engine's headline parallel mode.
func (e *Engine) CTR(ctx context.Context, iv, src []byte) ([]byte, error) {
	blk := e.BlockContext(ctx)
	out, err := modes.CTRStream(blk, iv, src)
	return blockErr(out, err, blk)
}

// EncryptECB encrypts whole independent blocks across the pool.
func (e *Engine) EncryptECB(ctx context.Context, src []byte) ([]byte, error) {
	blk := e.BlockContext(ctx)
	out, err := modes.EncryptECB(blk, src)
	return blockErr(out, err, blk)
}

// DecryptECB decrypts whole independent blocks across the pool.
func (e *Engine) DecryptECB(ctx context.Context, src []byte) ([]byte, error) {
	blk := e.BlockContext(ctx)
	out, err := modes.DecryptECB(blk, src)
	return blockErr(out, err, blk)
}

// EncryptCBC chains each block on the previous ciphertext, so it cannot
// fan out: it streams sequentially through the pool (single shard busy at
// a time). Use CTR when throughput matters.
func (e *Engine) EncryptCBC(ctx context.Context, iv, src []byte) ([]byte, error) {
	blk := e.BlockContext(ctx)
	out, err := modes.EncryptCBC(blk, iv, src)
	return blockErr(out, err, blk)
}

// DecryptCBC decrypts CBC ciphertext with the block decrypts fanned out
// across the pool (CBC decryption is order-independent).
func (e *Engine) DecryptCBC(ctx context.Context, iv, src []byte) ([]byte, error) {
	blk := e.BlockContext(ctx)
	out, err := modes.DecryptCBC(blk, iv, src)
	return blockErr(out, err, blk)
}

// EncryptCFB chains like CBC encryption and therefore streams
// sequentially through the pool.
func (e *Engine) EncryptCFB(ctx context.Context, iv, src []byte) ([]byte, error) {
	blk := e.BlockContext(ctx)
	out, err := modes.EncryptCFB(blk, iv, src)
	return blockErr(out, err, blk)
}

// DecryptCFB inverts EncryptCFB (keystream blocks derive from known
// ciphertext; the modes layer still walks them in order).
func (e *Engine) DecryptCFB(ctx context.Context, iv, src []byte) ([]byte, error) {
	blk := e.BlockContext(ctx)
	out, err := modes.DecryptCFB(blk, iv, src)
	return blockErr(out, err, blk)
}

// ShardStats is one replica's share of the work.
type ShardStats struct {
	Shard int
	// Blocks is how many transactions this shard completed successfully.
	Blocks uint64
	// Cycles is the simulated clock cycles this shard's device spent,
	// including the load edge of every transaction.
	Cycles uint64
	// CyclesPerBlock is Cycles / Blocks.
	CyclesPerBlock float64
	// Stolen counts submissions this shard claimed from a sibling's queue.
	Stolen uint64
	// QueueDepth is the queue occupancy at snapshot time.
	QueueDepth int
	// Submissions is how many lane-packed transactions this shard ran
	// (each carrying 1..MaxLanes blocks; under supervision, detected-bad
	// attempts count too).
	Submissions uint64
	// WastedLanes sums, over successful submissions, the lanes left idle
	// because fewer than MaxLanes blocks were available to pack.
	WastedLanes uint64
	// Health is the shard's supervision state at snapshot time:
	// "healthy", "quarantined" or "dead". Always "healthy" on an
	// unsupervised engine.
	Health string
	// Generation counts driver builds: 1 at construction, +1 per
	// successful hot-respawn.
	Generation uint64
	// Detections, Quarantines and Respawns are this shard's share of the
	// supervision counters.
	Detections  uint64
	Quarantines uint64
	Respawns    uint64
	// Triage classification shares: Transients (detections recovered in
	// place, within budget), Persistents (classifications that
	// quarantined this shard, escalations included), InPlaceRecoveries
	// (successful strike-free retries, whether or not the budget then
	// escalated).
	Transients        uint64
	Persistents       uint64
	InPlaceRecoveries uint64
	// Scrub and EDAC shares: completed full scrub passes, words repaired /
	// found hard by this shard's scrubber and diagnosis sweeps, and EDAC
	// read-path correction events across all of the shard's driver
	// generations.
	ScrubSweeps           uint64
	ScrubCorrected        uint64
	ScrubUncorrectable    uint64
	ROMCorrectedReads     uint64
	ROMUncorrectableReads uint64
}

// EngineStats aggregates the pool.
type EngineStats struct {
	Shards []ShardStats
	// Blocks is the total completed across all shards.
	Blocks uint64
	// MaxShardCycles is the busiest shard's simulated cycle count — the
	// makespan: the replicas run concurrently in hardware, so the wall
	// clock of the whole pool is the slowest replica, not the sum.
	MaxShardCycles uint64
	// AggregateCyclesPerBlock is MaxShardCycles / Blocks: the effective
	// per-block cost of the pool. With N evenly loaded shards it
	// approaches (single-core cycles per block) / N, and lane packing
	// divides it further by the average blocks per submission.
	AggregateCyclesPerBlock float64
	// Submissions is the total lane-packed transactions across all shards.
	Submissions uint64
	// WastedLanes is the total idle lanes across successful submissions.
	WastedLanes uint64
	// LaneOccupancy is Blocks / (Blocks + WastedLanes): the fraction of
	// configured lane capacity that carried real blocks. 1.0 means every
	// submission was fully packed.
	LaneOccupancy float64

	// Supervision counters (all zero on an unsupervised engine).
	//
	// Detections counts checker hits across all shards (watchdog expiry,
	// latency assertion, lockstep divergence, failed inverse check).
	// Retries counts detected-bad submissions re-queued to a healthy
	// shard. Quarantines counts shards taken out of rotation (a shard can
	// be quarantined more than once across its lifetime). Respawns counts
	// successful hot-respawns; RespawnFailures counts failed attempts
	// (hook veto, build error, or power-on self-test mismatch).
	// FallbackBlocks counts blocks served by the software reference —
	// retry budgets exhausted or no healthy shard available.
	Detections      uint64
	Retries         uint64
	Quarantines     uint64
	Respawns        uint64
	RespawnFailures uint64
	FallbackBlocks  uint64

	// Triage counters (all zero without supervision).
	//
	// Every detection is classified: Transients recovered with one
	// in-place retry and stayed within the shard's error budget (no
	// quarantine); Persistents quarantined the shard — repeat failures,
	// ROM damage found by triage or the scrubber, and budget Escalations
	// all count here. InPlaceRecoveries counts successful strike-free
	// retries (a budget escalation still recovered its data in place, so
	// InPlaceRecoveries >= Transients). Detections may exceed
	// Transients+Persistents (classification in flight), and Persistents
	// may exceed what detections explain: the background scrubber
	// classifies EDAC-masked ROM damage persistent without any
	// transaction-level detection ever firing.
	Transients        uint64
	Persistents       uint64
	InPlaceRecoveries uint64
	Escalations       uint64
	// Memory-integrity counters. ScrubSweeps counts completed full passes
	// over a shard's ROM stores; ScrubCorrected counts words whose
	// correctable error a sweep rewrote successfully (SEUs flushed);
	// ScrubUncorrectable counts words a sweep could not repair (stuck bit
	// or multi-bit damage — each such find quarantines its shard).
	// ROMCorrectedReads / ROMUncorrectableReads count EDAC read-path
	// events: transactions that touched a faulty word and got corrected
	// (or raw, for multi-bit) data.
	ScrubSweeps           uint64
	ScrubCorrected        uint64
	ScrubUncorrectable    uint64
	ROMCorrectedReads     uint64
	ROMUncorrectableReads uint64

	// HealthyShards is how many shards were healthy at snapshot time;
	// Degraded reports that none were — the engine is serving every block
	// from the software reference until a respawn lands.
	HealthyShards int
	Degraded      bool
}

// Stats snapshots per-shard and aggregate counters. Safe to call while
// blocks are in flight.
//
// Snapshot consistency: aggregates are derived from a single pass over
// the per-shard counters (never from separately maintained engine totals,
// which could be loaded at a different instant), so Blocks, Detections,
// Quarantines, Respawns, the triage counters and HealthyShards are always
// exactly the sum/count of the Shards slice in the same snapshot. Within
// each shard the counters are loaded in the reverse of their increment
// order, which preserves the monotonic invariants even mid-flight:
//
//	Retries            <= Detections
//	Transients         <= InPlaceRecoveries <= Detections
//	Escalations        <= Persistents
//	Respawns           <= Quarantines       <= Persistents
//
// (TestStatsSnapshotInvariants holds these under -race chaos load.)
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Shards: make([]ShardStats, len(e.shards)),
		// Engine-level counters without per-shard twins are loaded before
		// the shard pass: each is incremented after the per-shard counter
		// that bounds it (a retry after its detection, an escalation after
		// its persistent classification), so loading the bound first and
		// the bounding sum second keeps the inequality intact.
		Retries:         e.retries.Load(),
		Escalations:     e.escalations.Load(),
		RespawnFailures: e.respawnFailures.Load(),
		FallbackBlocks:  e.fallbackBlocks.Load(),
	}
	for i, s := range e.shards {
		// Load order (reverse of increment order): a counter that is
		// incremented later in the recovery ladder is loaded earlier, so
		// its snapshot can never exceed the counter that precedes it.
		state := s.state.Load()
		respawns := s.respawns.Load()
		quarantines := s.quarantines.Load()
		persistents := s.persistents.Load()
		transients := s.transients.Load()
		inPlace := s.inPlace.Load()
		detections := s.detections.Load()
		ss := ShardStats{
			Shard:       i,
			Blocks:      s.blocks.Load(),
			Cycles:      s.cycles.Load(),
			Stolen:      s.stolen.Load(),
			QueueDepth:  len(s.q),
			Submissions: s.submissions.Load(),
			WastedLanes: s.wasted.Load(),
			Health:      healthName(state),
			Generation:  s.gen.Load(),
			Detections:  detections,
			Quarantines: quarantines,
			Respawns:    respawns,

			Transients:         transients,
			Persistents:        persistents,
			InPlaceRecoveries:  inPlace,
			ScrubSweeps:        s.scrubSweeps.Load(),
			ScrubCorrected:     s.scrubCorrected.Load(),
			ScrubUncorrectable: s.scrubUncorrectable.Load(),
		}
		ss.ROMCorrectedReads, ss.ROMUncorrectableReads = s.romReadStats()
		st.ROMCorrectedReads += ss.ROMCorrectedReads
		st.ROMUncorrectableReads += ss.ROMUncorrectableReads
		if ss.Blocks > 0 {
			ss.CyclesPerBlock = float64(ss.Cycles) / float64(ss.Blocks)
		}
		if state == shardHealthy {
			st.HealthyShards++
		}
		st.Blocks += ss.Blocks
		st.Submissions += ss.Submissions
		st.WastedLanes += ss.WastedLanes
		st.Detections += ss.Detections
		st.Quarantines += ss.Quarantines
		st.Respawns += ss.Respawns
		st.Transients += ss.Transients
		st.Persistents += ss.Persistents
		st.InPlaceRecoveries += ss.InPlaceRecoveries
		st.ScrubSweeps += ss.ScrubSweeps
		st.ScrubCorrected += ss.ScrubCorrected
		st.ScrubUncorrectable += ss.ScrubUncorrectable
		if ss.Cycles > st.MaxShardCycles {
			st.MaxShardCycles = ss.Cycles
		}
		st.Shards[i] = ss
	}
	st.Degraded = st.HealthyShards == 0
	if st.Blocks > 0 {
		st.AggregateCyclesPerBlock = float64(st.MaxShardCycles) / float64(st.Blocks)
		st.LaneOccupancy = float64(st.Blocks) / float64(st.Blocks+st.WastedLanes)
	}
	return st
}

// Throughput converts the aggregate steady-state rate into the paper's
// megabit-per-second metric at the implementation's timing-closed clock.
func (e *Engine) Throughput() float64 {
	st := e.Stats()
	if st.AggregateCyclesPerBlock == 0 {
		return 0
	}
	ns := st.AggregateCyclesPerBlock * e.impl.ClockNS()
	if ns == 0 {
		return 0
	}
	return 128 / ns * 1000
}
