// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the paper's metric as testing.B custom metrics
// (logic cells, clock period, throughput), so `-bench` output is the
// reproduction of the corresponding table row; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package rijndaelip_test

import (
	"fmt"
	"testing"

	"rijndaelip"
	"rijndaelip/internal/report"
	"rijndaelip/internal/rtl"
)

// BenchmarkTable1DeviceSignals regenerates Table 1: the device interface
// pin budget for each variant (261 pins single-direction, 262 combined).
func BenchmarkTable1DeviceSignals(b *testing.B) {
	for _, v := range []rijndaelip.Variant{rijndaelip.Encrypt, rijndaelip.Decrypt, rijndaelip.Both} {
		b.Run(v.String(), func(b *testing.B) {
			var pins int
			for i := 0; i < b.N; i++ {
				impl, err := rijndaelip.Build(v, rijndaelip.Acex1K())
				if err != nil {
					b.Fatal(err)
				}
				pins = impl.Fit.Pins
			}
			b.ReportMetric(float64(pins), "pins")
		})
	}
}

// BenchmarkTable2 regenerates the paper's Table 2: one sub-benchmark per
// (variant, device) cell running the complete flow and reporting the
// paper's metrics.
func BenchmarkTable2(b *testing.B) {
	for _, v := range []rijndaelip.Variant{rijndaelip.Encrypt, rijndaelip.Decrypt, rijndaelip.Both} {
		for _, dev := range []rijndaelip.Device{rijndaelip.Acex1K(), rijndaelip.Cyclone()} {
			name := fmt.Sprintf("%s/%s", v, dev.Family)
			b.Run(name, func(b *testing.B) {
				var impl *rijndaelip.Implementation
				var err error
				for i := 0; i < b.N; i++ {
					impl, err = rijndaelip.Build(v, dev)
					if err != nil {
						b.Fatal(err)
					}
				}
				cell := impl.Table2Cell()
				b.ReportMetric(float64(cell.LCs), "LCs")
				b.ReportMetric(float64(cell.MemoryBits), "membits")
				b.ReportMetric(cell.ClkNS, "clk-ns")
				b.ReportMetric(cell.LatencyNS, "latency-ns")
				b.ReportMetric(cell.ThroughputMbps, "Mbps")
				if paper, ok := report.FindPaperCell(cell.Variant, cell.Device); ok {
					b.ReportMetric(paper.ThroughputMbps, "paper-Mbps")
				}
			})
		}
	}
}

// BenchmarkTable3 regenerates Table 3's measured rows: the reimplemented
// comparison architectures plus this work.
func BenchmarkTable3(b *testing.B) {
	b.Run("lowcost8bit", func(b *testing.B) {
		var r *rijndaelip.BaselineResult
		var err error
		for i := 0; i < b.N; i++ {
			r, err = rijndaelip.BuildBaseline(rijndaelip.Width8, rijndaelip.Acex1K())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(r.Fit.LogicCells), "LCs")
		b.ReportMetric(r.ThroughputMbps(), "Mbps")
	})
	b.Run("parallel128bit", func(b *testing.B) {
		var r *rijndaelip.BaselineResult
		var err error
		for i := 0; i < b.N; i++ {
			r, err = rijndaelip.BuildBaseline(rijndaelip.Width128, rijndaelip.Apex20KE())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(r.Fit.LogicCells), "LCs")
		b.ReportMetric(float64(r.Fit.MemoryBits), "membits")
		b.ReportMetric(r.ThroughputMbps(), "Mbps")
	})
	b.Run("thiswork", func(b *testing.B) {
		var impl *rijndaelip.Implementation
		var err error
		for i := 0; i < b.N; i++ {
			impl, err = rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(impl.Fit.LogicCells), "LCs")
		b.ReportMetric(impl.ThroughputMbps(), "Mbps")
	})
}

// BenchmarkFig5SBoxMemory regenerates the Fig. 5 discussion: S-box memory
// versus ByteSub parallelism (2 Kbit per S-box; 8 Kbit for a 32-bit bank;
// 32 Kbit for full parallelism).
func BenchmarkFig5SBoxMemory(b *testing.B) {
	cases := []struct {
		name  string
		build func() (int, error)
	}{
		{"8bit-1box", func() (int, error) {
			r, err := rijndaelip.BuildBaseline(rijndaelip.Width8, rijndaelip.Acex1K())
			if err != nil {
				return 0, err
			}
			return r.Fit.MemoryBits, nil
		}},
		{"32bit-4boxes", func() (int, error) {
			impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
			if err != nil {
				return 0, err
			}
			return impl.Fit.MemoryBits, nil
		}},
		{"128bit-16boxes", func() (int, error) {
			r, err := rijndaelip.BuildBaseline(rijndaelip.Width128, rijndaelip.Apex20KE())
			if err != nil {
				return 0, err
			}
			return r.Fit.MemoryBits, nil
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var bits int
			var err error
			for i := 0; i < b.N; i++ {
				bits, err = c.build()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(bits), "membits")
		})
	}
}

// BenchmarkAblationWidths regenerates the §4/§6 datapath-width comparison
// the paper argues from: cycles per block, clock and throughput for the
// 8-bit, 32-bit, mixed and 128-bit organizations.
func BenchmarkAblationWidths(b *testing.B) {
	run := func(name string, cycles int, build func() (lc int, clk, mbps float64, err error)) {
		b.Run(name, func(b *testing.B) {
			var lc int
			var clk, mbps float64
			var err error
			for i := 0; i < b.N; i++ {
				lc, clk, mbps, err = build()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(float64(lc), "LCs")
			b.ReportMetric(clk, "clk-ns")
			b.ReportMetric(mbps, "Mbps")
		})
	}
	run("w8", 250, func() (int, float64, float64, error) {
		r, err := rijndaelip.BuildBaseline(rijndaelip.Width8, rijndaelip.Acex1K())
		if err != nil {
			return 0, 0, 0, err
		}
		return r.Fit.LogicCells, r.ClockNS(), r.ThroughputMbps(), nil
	})
	run("w32", 120, func() (int, float64, float64, error) {
		r, err := rijndaelip.BuildBaseline(rijndaelip.Width32, rijndaelip.Acex1K())
		if err != nil {
			return 0, 0, 0, err
		}
		return r.Fit.LogicCells, r.ClockNS(), r.ThroughputMbps(), nil
	})
	run("mixed", 50, func() (int, float64, float64, error) {
		impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
		if err != nil {
			return 0, 0, 0, err
		}
		return impl.Fit.LogicCells, impl.ClockNS(), impl.ThroughputMbps(), nil
	})
	run("w128", 10, func() (int, float64, float64, error) {
		r, err := rijndaelip.BuildBaseline(rijndaelip.Width128, rijndaelip.Apex20KE())
		if err != nil {
			return 0, 0, 0, err
		}
		return r.Fit.LogicCells, r.ClockNS(), r.ThroughputMbps(), nil
	})
}

// BenchmarkFutureSyncROM regenerates the paper's §5 future-work
// experiment: synchronous M4K ROM S-boxes on Cyclone.
func BenchmarkFutureSyncROM(b *testing.B) {
	style := rtl.ROMSync
	for _, v := range []rijndaelip.Variant{rijndaelip.Encrypt, rijndaelip.Decrypt, rijndaelip.Both} {
		b.Run(v.String(), func(b *testing.B) {
			var impl *rijndaelip.Implementation
			var err error
			for i := 0; i < b.N; i++ {
				impl, err = rijndaelip.Build(v, rijndaelip.Cyclone(),
					rijndaelip.Options{ROMStyle: &style})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(impl.Fit.LogicCells), "LCs")
			b.ReportMetric(float64(impl.Fit.MemoryBits), "membits")
			b.ReportMetric(impl.ThroughputMbps(), "Mbps")
		})
	}
}

// BenchmarkFig8Streaming exercises the decoupled Data In / Out processes
// of Figs. 8/9: sustained cycles per block when loads overlap processing.
func BenchmarkFig8Streaming(b *testing.B) {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		b.Fatal(err)
	}
	drv := impl.NewDriver()
	if _, err := drv.LoadKey(make([]byte, 16)); err != nil {
		b.Fatal(err)
	}
	blocks := make([][]byte, 16)
	for i := range blocks {
		blocks[i] = make([]byte, 16)
		blocks[i][0] = byte(i)
	}
	b.SetBytes(int64(len(blocks) * 16))
	var sustained float64
	for i := 0; i < b.N; i++ {
		_, res, err := drv.Stream(blocks, true)
		if err != nil {
			b.Fatal(err)
		}
		sustained = res.CyclesPerBlock
	}
	b.ReportMetric(sustained, "cycles/block")
	b.ReportMetric(128/(sustained*impl.ClockNS())*1000, "sustained-Mbps")
}
