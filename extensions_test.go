package rijndaelip_test

import (
	"bytes"
	stdcipher "crypto/cipher"
	"testing"

	"rijndaelip"
	"rijndaelip/internal/modes"
)

// TestHardwareBlockGCM validates a full authenticated-encryption protocol
// (GCM) where every block operation is a 50-cycle bus transaction against
// the cycle-accurate simulation of the combined core, cross-checked
// against the Go standard library's GCM over the software reference.
func TestHardwareBlockGCM(t *testing.T) {
	impl, err := rijndaelip.Build(rijndaelip.Both, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("gcm-over-fpga-ip")
	hw, err := impl.NewHardwareBlock(key)
	if err != nil {
		t.Fatal(err)
	}
	g, err := modes.NewGCM(hw)
	if err != nil {
		t.Fatal(err)
	}
	nonce := []byte("0123456789ab")
	pt := []byte("backbone traffic protected by the low-occupation IP")
	aad := []byte("hdr")

	sealed, err := g.Seal(nonce, pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	if hw.Err() != nil {
		t.Fatal(hw.Err())
	}
	if hw.Cycles == 0 {
		t.Fatal("hardware block recorded no cycles")
	}

	// Reference: stdlib GCM over our software cipher.
	sw, err := rijndaelip.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := stdcipher.NewGCM(sw)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Seal(nil, nonce, pt, aad)
	if !bytes.Equal(sealed, want) {
		t.Fatalf("hardware-backed GCM %x != reference %x", sealed, want)
	}

	back, err := g.Open(nonce, sealed, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("hardware-backed GCM round trip failed")
	}
}

// TestHardwareBlockCMAC runs the RFC 4493 first vector through the
// simulated hardware.
func TestHardwareBlockCMAC(t *testing.T) {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	hw, err := impl.NewHardwareBlock(key)
	if err != nil {
		t.Fatal(err)
	}
	mac, err := modes.CMAC(hw, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28,
		0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75, 0x67, 0x46}
	if !bytes.Equal(mac, want) {
		t.Fatalf("hardware CMAC = %x, want %x", mac, want)
	}
}

// TestHardwareBlockShortBuffers checks the block adapter's buffer
// validation: a src or dst shorter than one block must be recorded as a
// proper error (and the reachable output zeroed), never a panic or a
// silent truncation — and the error must not poison unrelated state.
func TestHardwareBlockShortBuffers(t *testing.T) {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	hw, err := impl.NewHardwareBlock([]byte("short-buffer-key"))
	if err != nil {
		t.Fatal(err)
	}
	dst := bytes.Repeat([]byte{0xFF}, 8)
	hw.Encrypt(dst, make([]byte, 16)) // dst too short
	if hw.Err() == nil {
		t.Fatal("short dst not recorded as error")
	}
	if !bytes.Equal(dst, make([]byte, 8)) {
		t.Errorf("short dst not zeroed: %x", dst)
	}

	hw2, err := impl.NewHardwareBlock([]byte("short-buffer-key"))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 16)
	hw2.Encrypt(out, make([]byte, 15)) // src too short
	if hw2.Err() == nil {
		t.Fatal("short src not recorded as error")
	}
	if !bytes.Equal(out, make([]byte, 16)) {
		t.Errorf("output not zeroed on short src: %x", out)
	}
	// Once poisoned, later full-size calls keep reporting the first error.
	hw2.Encrypt(out, make([]byte, 16))
	if hw2.Err() == nil {
		t.Error("first error not sticky")
	}
}

// TestHardenFlow measures the TMR cost through the full flow: 3x the
// registers plus one voter LUT each, still fitting the device, still
// meeting a reasonable clock, and the functional campaign is covered by
// internal/tmr.
func TestHardenFlow(t *testing.T) {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	hard, err := impl.Harden()
	if err != nil {
		t.Fatal(err)
	}
	if hard.Stats.FFsAfter != 3*hard.Stats.FFsBefore {
		t.Errorf("FF triplication wrong: %+v", hard.Stats)
	}
	if hard.Fit.LogicCells <= impl.Fit.LogicCells {
		t.Error("hardening should cost logic cells")
	}
	if hard.ClockNS() < impl.ClockNS() {
		t.Error("hardening should not speed the clock up")
	}
	if hard.ThroughputMbps() <= 0 {
		t.Error("hardened throughput not computed")
	}
}

// TestMeasurePower exercises the §6 power analysis across variants: the
// combined core must draw more than the encryptor, and the report must
// carry a sensible breakdown.
func TestMeasurePower(t *testing.T) {
	key := []byte("power-meas-key!!")
	enc, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	encRep, err := enc.MeasurePower(key, 2)
	if err != nil {
		t.Fatal(err)
	}
	if encRep.PowerMW <= encRep.Model.LeakageMW {
		t.Fatalf("no dynamic power recorded: %+v", encRep)
	}
	if encRep.MemoryNJ <= 0 {
		t.Error("EAB reads recorded no energy")
	}

	both, err := rijndaelip.Build(rijndaelip.Both, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	bothRep, err := both.MeasurePower(key, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bothRep.DynamicEnergyNJ <= encRep.DynamicEnergyNJ {
		t.Errorf("combined core dynamic energy %.2f nJ not above encryptor %.2f nJ",
			bothRep.DynamicEnergyNJ, encRep.DynamicEnergyNJ)
	}
}

// TestPlaceAndTime exercises the placement-aware timing refinement through
// the public API.
func TestPlaceAndTime(t *testing.T) {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	placed, err := impl.PlaceAndTime(7)
	if err != nil {
		t.Fatal(err)
	}
	if placed.HPWL <= 0 || placed.HPWL >= placed.InitialHPWL {
		t.Errorf("placement quality: %.0f -> %.0f", placed.InitialHPWL, placed.HPWL)
	}
	if placed.Timing.Period <= impl.ClockNS() {
		t.Errorf("placed period %.2f should exceed the wire-free estimate %.2f",
			placed.Timing.Period, impl.ClockNS())
	}
	if placed.Timing.Period > 2.5*impl.ClockNS() {
		t.Errorf("placed period %.2f implausible vs estimate %.2f",
			placed.Timing.Period, impl.ClockNS())
	}
}

// TestPlaceRouteAndTime runs the complete back end through the public API:
// place, route to convergence, and routed-wirelength timing.
func TestPlaceRouteAndTime(t *testing.T) {
	if testing.Short() {
		t.Skip("full P&R skipped in -short mode")
	}
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := impl.PlaceRouteAndTime(2003)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Routing.Converged {
		t.Errorf("routing did not converge (max channel use %d)", pr.Routing.MaxChannelUse)
	}
	if float64(pr.Routing.TotalWirelength) < pr.Placement.HPWL {
		t.Errorf("routed length %d below the HPWL lower bound %.0f",
			pr.Routing.TotalWirelength, pr.Placement.HPWL)
	}
	if pr.Timing.Period <= impl.ClockNS() || pr.Timing.Period > 2.5*impl.ClockNS() {
		t.Errorf("routed period %.2f vs estimate %.2f out of band",
			pr.Timing.Period, impl.ClockNS())
	}
}

// TestBuild256Flow runs the AES-256 extension through the whole flow: fit,
// timing and a functional check, comparing its cost against the AES-128
// encryptor.
func TestBuild256Flow(t *testing.T) {
	impl256, err := rijndaelip.Build256(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	impl128, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	if impl256.Core.BlockLatency != 70 {
		t.Errorf("AES-256 latency %d cycles, want 70", impl256.Core.BlockLatency)
	}
	if impl256.Fit.MemoryBits != impl128.Fit.MemoryBits {
		t.Errorf("AES-256 memory %d, want the same 16 Kbit as AES-128", impl256.Fit.MemoryBits)
	}
	// The wider key window costs extra registers and muxing.
	if impl256.Fit.LogicCells <= impl128.Fit.LogicCells {
		t.Errorf("AES-256 LCs %d not above AES-128's %d", impl256.Fit.LogicCells, impl128.Fit.LogicCells)
	}
	// Throughput drops by roughly the 50/70 cycle ratio.
	ratio := impl256.ThroughputMbps() / impl128.ThroughputMbps()
	if ratio < 0.5 || ratio > 0.85 {
		t.Errorf("AES-256/AES-128 throughput ratio %.2f outside the 50/70-cycle band", ratio)
	}
	// Functional check through the driver.
	drv := impl256.NewDriver()
	key := make([]byte, 32)
	if _, err := drv.LoadKey(key); err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 16)
	got, _, err := drv.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := rijndaelip.NewCipher(key)
	want := make([]byte, 16)
	ref.Encrypt(want, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("AES-256 flow encrypt = %x, want %x", got, want)
	}
}
