// Command ipcompare regenerates the paper's Table 3: the comparison of the
// low-occupation IP against other published FPGA implementations. The
// literature rows carry the figures legible in the archived paper;
// comparison architectures with illegible figures are reimplemented in
// this repository (byte-serial low-cost core, fully parallel 128-bit core)
// and synthesized through the same flow, so the qualitative comparison —
// who wins on area, who on throughput — is regenerated rather than quoted.
//
// With -ablation it also prints the §6 datapath-width ablation on the
// paper's primary device.
package main

import (
	"flag"
	"fmt"
	"os"

	"rijndaelip"
	"rijndaelip/internal/report"
)

func main() {
	ablation := flag.Bool("ablation", false, "also print the datapath-width ablation (8/32/mixed/128)")
	flag.Parse()

	rows, err := rijndaelip.Table3()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipcompare:", err)
		os.Exit(1)
	}
	fmt.Println("Table 3 — comparison with published FPGA implementations")
	fmt.Println()
	fmt.Print(report.RenderTable3(rows))

	if *ablation {
		fmt.Println()
		fmt.Println("Datapath-width ablation (encryptors, Acex1K unless stated):")
		fmt.Printf("  %-22s %8s %10s %9s %9s %11s\n",
			"architecture", "LCs", "mem bits", "clk ns", "cycles", "Mbps")
		for _, w := range []rijndaelip.BaselineWidth{rijndaelip.Width8, rijndaelip.Width32} {
			r, err := rijndaelip.BuildBaseline(w, rijndaelip.Acex1K())
			if err != nil {
				fmt.Fprintln(os.Stderr, "ipcompare:", err)
				os.Exit(1)
			}
			fmt.Printf("  %-22s %8d %10d %9.2f %9d %11.0f\n",
				fmt.Sprintf("%d-bit serial", int(w)), r.Fit.LogicCells, r.Fit.MemoryBits,
				r.ClockNS(), r.Core.BlockLatency, r.ThroughputMbps())
		}
		impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipcompare:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-22s %8d %10d %9.2f %9d %11.0f   <- the paper's choice\n",
			"mixed 32/128", impl.Fit.LogicCells, impl.Fit.MemoryBits,
			impl.ClockNS(), impl.Core.BlockLatency, impl.ThroughputMbps())
		w128, err := rijndaelip.BuildBaseline(rijndaelip.Width128, rijndaelip.Acex1K())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipcompare:", err)
			os.Exit(1)
		}
		if w128.FitError != nil {
			fmt.Printf("  %-22s does not fit EP1K100: %v\n", "128-bit parallel", w128.FitError)
		}
		w128a, err := rijndaelip.BuildBaseline(rijndaelip.Width128, rijndaelip.Apex20KE())
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipcompare:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-22s %8d %10d %9.2f %9d %11.0f   (Apex20KE)\n",
			"128-bit parallel", w128a.Fit.LogicCells, w128a.Fit.MemoryBits,
			w128a.ClockNS(), w128a.Core.BlockLatency, w128a.ThroughputMbps())
		fmt.Println()
		fmt.Println("  §6 check: the 128-bit core's critical path runs through the key schedule:")
		fmt.Print(indent(w128a.Timing.String(), "    "))
	}
}

func indent(s, pad string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += pad + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += pad + s[start:]
	}
	return out
}
