// Command lint runs the repository's full static verification suite and
// exits nonzero on any finding:
//
//  1. design-rule lint (internal/designlint) over the three paper cores —
//     encrypt-only, decrypt-only and shared-datapath — at both the RTL/AIG
//     level and the mapped-netlist level;
//  2. the static compiled-tape audit (logic/netlist/rtl AuditCompiled),
//     proving without execution that both simulators' instruction tapes
//     are faithful linearizations;
//  3. source-level analyzers (internal/srclint) over every non-test
//     package in the module.
//
// Info-severity design findings (for example dead AIG cones left behind by
// structural hashing) are advisory: printed with -v, never fatal.
//
// Usage:
//
//	lint [-root dir] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"rijndaelip/internal/designlint"
	"rijndaelip/internal/netlist"
	"rijndaelip/internal/rijndael"
	"rijndaelip/internal/rtl"
	"rijndaelip/internal/srclint"
	"rijndaelip/internal/techmap"
)

var variants = []struct {
	name string
	v    rijndael.Variant
}{
	{"enc", rijndael.Encrypt},
	{"dec", rijndael.Decrypt},
	{"encdec", rijndael.Both},
}

func main() {
	root := flag.String("root", ".", "module root for the source-level analyzers")
	verbose := flag.Bool("v", false, "print advisory (Info) findings and structure reports")
	flag.Parse()

	failures := 0

	fmt.Printf("design-rule lint: %d rules, %d source analyzers\n",
		len(designlint.Rules()), len(srclint.Rules()))

	for _, vt := range variants {
		core, err := rijndael.New(rijndael.Config{Variant: vt.v, ROMStyle: rtl.ROMAsync})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint: %s: elaborate: %v\n", vt.name, err)
			os.Exit(2)
		}
		nl, err := core.Design.Synthesize(techmap.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint: %s: synthesize: %v\n", vt.name, err)
			os.Exit(2)
		}
		failures += reportDesign(vt.name, core.Design, nl, *verbose)
	}

	fmt.Printf("source lint: analyzing module at %s\n", *root)
	sfs, err := srclint.Run(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint: source analysis: %v\n", err)
		os.Exit(2)
	}
	for _, f := range sfs {
		fmt.Println("  " + f.String())
	}
	failures += len(sfs)

	if failures > 0 {
		fmt.Printf("lint: %d finding(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("lint: clean")
}

// reportDesign lints one elaborated core and its mapped netlist, audits both
// compiled tapes, and returns the number of fatal findings.
func reportDesign(name string, d *rtl.Design, nl *netlist.Netlist, verbose bool) int {
	failures := 0
	emit := func(prefix string, fs []designlint.Finding) {
		for _, f := range fs {
			if f.Severity == designlint.Info && !verbose {
				continue
			}
			fmt.Printf("  %s: %s\n", prefix, f)
		}
	}

	dfs := designlint.CheckDesign(d)
	emit(name, dfs)
	failures += designlint.Errors(dfs)

	nfs := designlint.CheckNetlist(nl)
	emit(name, nfs)
	failures += designlint.Errors(nfs)

	for _, msg := range d.AuditCompiled() {
		fmt.Printf("  %s: tape-audit(rtl): %s\n", name, msg)
		failures++
	}
	nmsgs, err := netlist.AuditCompiled(nl)
	if err != nil {
		fmt.Printf("  %s: tape-audit(netlist): netlist does not build: %v\n", name, err)
		failures++
	}
	for _, msg := range nmsgs {
		fmt.Printf("  %s: tape-audit(netlist): %s\n", name, msg)
		failures++
	}

	if verbose {
		fmt.Printf("  %s\n", designlint.ReportDesign(d))
		fmt.Printf("  %s\n", designlint.ReportNetlist(nl))
	}
	return failures
}
