// Command verifyall runs the repository's entire verification stack over
// the paper's core and prints a certificate summary:
//
//  1. functional sign-off: FIPS-197 vectors through the cycle-accurate RTL
//     and through the technology-mapped netlist;
//  2. formal equivalence: every mapped obligation SAT-proved against its
//     RTL cone;
//  3. the latency theorem: data_ok timing proved for every key and
//     plaintext by bounded model checking with COI reduction;
//  4. the unbounded 5-cycle-round invariant by 1-induction;
//  5. an SEU campaign on the TMR-hardened netlist;
//  6. the static verification suite: design-rule lint and the compiled-tape
//     audit per core, plus the source-level analyzers over the module.
package main

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"rijndaelip/internal/bfm"
	"rijndaelip/internal/bmc"
	"rijndaelip/internal/designlint"
	"rijndaelip/internal/netlist"
	"rijndaelip/internal/rijndael"
	"rijndaelip/internal/rtl"
	"rijndaelip/internal/srclint"
	"rijndaelip/internal/techmap"
	"rijndaelip/internal/tmr"
)

func step(name string, f func() (string, error)) {
	start := time.Now()
	detail, err := f()
	if err != nil {
		fmt.Printf("  FAIL  %-44s %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("  ok    %-44s %-28s %8s\n", name, detail, time.Since(start).Round(time.Millisecond))
}

func main() {
	full := flag.Bool("full", false, "also verify the decryptor (slower equivalence proofs)")
	flag.Parse()

	variants := []rijndael.Variant{rijndael.Encrypt}
	if *full {
		variants = append(variants, rijndael.Decrypt)
	}

	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	pt, _ := hex.DecodeString("3243f6a8885a308d313198a2e0370734")
	ct, _ := hex.DecodeString("3925841d02dc09fbdc118597196a0b32")

	for _, v := range variants {
		fmt.Printf("verification certificate: %s core (async EAB S-boxes)\n", v)
		core, err := rijndael.New(rijndael.Config{Variant: v, ROMStyle: rtl.ROMAsync})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := core.Design.SynthesizeTracked(techmap.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		nl := res.Netlist

		step("design-rule lint + static tape audit", func() (string, error) {
			dfs := designlint.CheckDesign(core.Design)
			if n := designlint.Errors(dfs); n != 0 {
				return "", fmt.Errorf("%d design finding(s), first: %s", n, dfs[0])
			}
			if nfs := designlint.CheckNetlist(nl); len(nfs) != 0 {
				return "", fmt.Errorf("%d netlist finding(s), first: %s", len(nfs), nfs[0])
			}
			if msgs := core.Design.AuditCompiled(); len(msgs) != 0 {
				return "", fmt.Errorf("rtl schedule audit: %s", msgs[0])
			}
			msgs, err := netlist.AuditCompiled(nl)
			if err != nil {
				return "", err
			}
			if len(msgs) != 0 {
				return "", fmt.Errorf("netlist tape audit: %s", msgs[0])
			}
			return fmt.Sprintf("%d rules clean, both tapes faithful", len(designlint.Rules())), nil
		})

		step("RTL simulation vs FIPS-197", func() (string, error) {
			drv := bfm.New(core)
			if _, err := drv.LoadKey(key); err != nil {
				return "", err
			}
			var got []byte
			var cycles int
			if v == rijndael.Decrypt {
				got, cycles, err = drv.Decrypt(ct)
			} else {
				got, cycles, err = drv.Encrypt(pt)
			}
			if err != nil {
				return "", err
			}
			want := pt
			if v != rijndael.Decrypt {
				want = ct
			}
			if !bytes.Equal(got, want) {
				return "", fmt.Errorf("vector mismatch: %x", got)
			}
			return fmt.Sprintf("Appendix B vector, %d cycles", cycles), nil
		})

		step("post-synthesis simulation vs FIPS-197", func() (string, error) {
			sim, err := netlist.NewSimulator(nl)
			if err != nil {
				return "", err
			}
			drv := bfm.NewPostSynthesis(core, sim)
			if _, err := drv.LoadKey(key); err != nil {
				return "", err
			}
			var got []byte
			if v == rijndael.Decrypt {
				got, _, err = drv.Decrypt(ct)
			} else {
				got, _, err = drv.Encrypt(pt)
			}
			if err != nil {
				return "", err
			}
			want := pt
			if v != rijndael.Decrypt {
				want = ct
			}
			if !bytes.Equal(got, want) {
				return "", fmt.Errorf("vector mismatch: %x", got)
			}
			return fmt.Sprintf("%d LUTs, %d FFs, %d ROMs", nl.NumLUTs(), nl.NumFFs(), len(nl.ROMs)), nil
		})

		step("SAT equivalence: netlist == RTL", func() (string, error) {
			rep, err := res.Verify(500000)
			if err != nil {
				return "", err
			}
			if len(rep.Undecided) > 0 {
				return "", fmt.Errorf("%d obligations undecided", len(rep.Undecided))
			}
			return fmt.Sprintf("%d/%d obligations UNSAT", rep.Proved, rep.Obligations), nil
		})

		if v == rijndael.Encrypt {
			step("latency theorem (all keys, all data)", func() (string, error) {
				frames := make([]bmc.Frame, 54)
				for i := range frames {
					frames[i] = bmc.Frame{Fixed: map[string]uint64{
						"setup": 0, "wr_key": 0, "wr_data": 0,
					}}
				}
				frames[0].Fixed = map[string]uint64{"setup": 1, "wr_key": 1, "wr_data": 0}
				frames[1].Fixed = map[string]uint64{"setup": 0, "wr_key": 0, "wr_data": 1}
				var props []bmc.Prop
				for f := 2; f <= 51; f++ {
					props = append(props, bmc.Prop{Frame: f, Signal: "data_ok", Value: false})
				}
				props = append(props, bmc.Prop{Frame: 52, Signal: "data_ok", Value: true})
				c, err := bmc.New(nl, frames, props)
				if err != nil {
					return "", err
				}
				rs, err := c.Check(props, 2000000)
				if err != nil {
					return "", err
				}
				for _, r := range rs {
					if r.Verdict != bmc.Proved {
						return "", fmt.Errorf("%v: %v", r.Prop, r.Verdict)
					}
				}
				luts, ffs := c.COISize()
				return fmt.Sprintf("%d props proved (COI %d LUTs/%d FFs)", len(rs), luts, ffs), nil
			})

			step("5-cycle-round invariant (unbounded)", func() (string, error) {
				inv := bmc.Invariant{
					{{FF: "phase[0]", Value: false}, {FF: "phase[2]", Value: false}},
					{{FF: "phase[1]", Value: false}, {FF: "phase[2]", Value: false}},
				}
				verdict, err := bmc.CheckInductive(nl, inv, 1000000)
				if err != nil {
					return "", err
				}
				if verdict != bmc.Proved {
					return "", fmt.Errorf("verdict %v", verdict)
				}
				return "phase in 0..4 proved by 1-induction", nil
			})
		}

		step("SEU campaign on the TMR-hardened netlist", func() (string, error) {
			hard, st, err := tmr.Harden(nl)
			if err != nil {
				return "", err
			}
			ref := ct
			dir := true
			inBlock := pt
			if v == rijndael.Decrypt {
				ref, inBlock, dir = pt, ct, false
			}
			rng := rand.New(rand.NewSource(16))
			const trials = 12
			for trial := 0; trial < trials; trial++ {
				sim, err := netlist.NewSimulator(hard)
				if err != nil {
					return "", err
				}
				drv := bfm.NewPostSynthesis(core, sim)
				if _, err := drv.LoadKey(key); err != nil {
					return "", err
				}
				// Inject a random upset mid-transaction by driving manually.
				sim.SetInput("wr_data", 1)
				sim.SetInputBits("din", inBlock)
				if core.Config.Variant == rijndael.Both {
					if dir {
						sim.SetInput("encdec", 1)
					} else {
						sim.SetInput("encdec", 0)
					}
				}
				sim.Step()
				sim.SetInput("wr_data", 0)
				hit := rng.Intn(sim.NumFFs())
				at := rng.Intn(core.BlockLatency)
				for c := 0; c < core.BlockLatency; c++ {
					if c == at {
						sim.FlipFF(hit)
					}
					sim.Step()
				}
				sim.Eval()
				out, err := sim.OutputBits("dout")
				if err != nil {
					return "", err
				}
				if !bytes.Equal(out, ref) {
					return "", fmt.Errorf("upset in %s at cycle %d corrupted the output", sim.FFName(hit), at)
				}
			}
			return fmt.Sprintf("%d upsets tolerated (%d voters)", trials, st.VoterLUTs), nil
		})
		fmt.Println()
	}

	fmt.Println("static source analysis")
	step("source analyzers over the module", func() (string, error) {
		root, err := findModuleRoot()
		if err != nil {
			return "", err
		}
		fs, err := srclint.Run(root)
		if err != nil {
			return "", err
		}
		if len(fs) != 0 {
			return "", fmt.Errorf("%d finding(s), first: %s", len(fs), fs[0])
		}
		return fmt.Sprintf("%d analyzers clean", len(srclint.Rules())), nil
	})
	fmt.Println()
	fmt.Println("all checks passed")
}

// findModuleRoot walks up from the working directory to the go.mod, so the
// source analyzers work when verifyall is launched from a subdirectory.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
