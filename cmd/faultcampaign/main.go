// Command faultcampaign runs the deterministic SEU-injection campaign over
// the mapped Rijndael core in three hardening configurations — plain, TMR
// (internal/tmr), and self-checking lockstep (internal/faultcampaign) — on
// both of the paper's devices, and prints a coverage-vs-area table: what
// each protection style costs in logic cells and what it buys in
// masked/detected fault coverage. This quantifies the §6 pointer to the
// radiation-tolerant version of the IP.
//
// The campaign is seeded: identical flags reproduce identical fault lists,
// so coverage numbers are comparable across configurations and runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"rijndaelip"
	"rijndaelip/internal/faultcampaign"
	"rijndaelip/internal/netlist"
	"rijndaelip/internal/report"
)

func main() {
	trials := flag.Int("trials", 150, "sampled faults per configuration")
	seed := flag.Int64("seed", 2003, "campaign RNG seed")
	multibit := flag.Int("multibit", 1, "flip-flops struck per upset (1 = SEU, >1 = MBU)")
	device := flag.String("device", "all", "device to sweep: all, acex, cyclone")
	exhaustive := flag.Bool("exhaustive", false, "sweep every (flip-flop x cycle) fault instead of sampling")
	watchdog := flag.Int("watchdog", 0, "watchdog budget in cycles (0 = driver default)")
	flag.Parse()

	type target struct {
		name string
		dev  rijndaelip.Device
	}
	var targets []target
	switch *device {
	case "all":
		targets = []target{{"Acex1K", rijndaelip.Acex1K()}, {"Cyclone", rijndaelip.Cyclone()}}
	case "acex":
		targets = []target{{"Acex1K", rijndaelip.Acex1K()}}
	case "cyclone":
		targets = []target{{"Cyclone", rijndaelip.Cyclone()}}
	default:
		fmt.Fprintf(os.Stderr, "faultcampaign: unknown device %q\n", *device)
		os.Exit(2)
	}

	var rows []report.FaultRow
	for _, tg := range targets {
		impl, err := rijndaelip.Build(rijndaelip.Encrypt, tg.dev)
		if err != nil {
			fatal(err)
		}
		hard, err := impl.Harden()
		if err != nil {
			fatal(err)
		}
		base := faultcampaign.Config{
			Core:     impl.Core,
			Trials:   *trials,
			Seed:     *seed,
			MultiBit: *multibit,
			Watchdog: *watchdog,
		}
		configs := []struct {
			name     string
			cfg      faultcampaign.Config
			lcs, ffs int
		}{
			{"plain", with(base, impl.Netlist.Raw(), false), impl.Fit.LogicCells, impl.Netlist.FFs},
			{"tmr", with(base, hard.Netlist, false), hard.Fit.LogicCells, len(hard.Netlist.FFs)},
			// Lockstep duplicates the whole core plus the output
			// comparator; 2x the plain fit is the area floor.
			{"lockstep", with(base, impl.Netlist.Raw(), true), 2 * impl.Fit.LogicCells, impl.Netlist.FFs},
		}
		for _, c := range configs {
			res, err := campaign(c.cfg, *exhaustive)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %-9s %v\n", tg.name, c.name+":", res)
			rows = append(rows, report.FaultRow{
				Config: c.name, Device: tg.name,
				LogicCells: c.lcs, FFs: c.ffs,
				Trials:    len(res.Trials),
				Masked:    res.Count(faultcampaign.SilentCorrect),
				Detected:  res.Count(faultcampaign.Detected),
				Corrupted: res.Count(faultcampaign.Corrupted),
				Hung:      res.Count(faultcampaign.Hung),
			})
		}
	}

	fmt.Println()
	fmt.Println("Fault-injection campaign — coverage vs area (seeded SEU sweep, encrypt core)")
	fmt.Println()
	fmt.Print(report.RenderFaultTable(rows))
	fmt.Println()
	fmt.Println("(lockstep LCs are the dual-core floor: two replicas plus the cycle comparator)")
	fmt.Println()

	if violations := report.FaultShapeChecks(rows); len(violations) > 0 {
		fmt.Println("shape checks: VIOLATIONS")
		for _, v := range violations {
			fmt.Println("  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("shape checks: TMR strictly improves masked coverage; lockstep eliminates silent corruption")
}

func with(base faultcampaign.Config, nl *netlist.Netlist, lockstep bool) faultcampaign.Config {
	base.Netlist = nl
	base.Lockstep = lockstep
	return base
}

func campaign(cfg faultcampaign.Config, exhaustive bool) (*faultcampaign.Result, error) {
	if exhaustive {
		return faultcampaign.Sweep(cfg)
	}
	return faultcampaign.Run(cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcampaign:", err)
	os.Exit(1)
}
