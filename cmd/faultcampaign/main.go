// Command faultcampaign runs the deterministic SEU-injection campaign over
// the mapped Rijndael core in three hardening configurations — plain, TMR
// (internal/tmr), and self-checking lockstep (internal/faultcampaign) — on
// both of the paper's devices, and prints a coverage-vs-area table: what
// each protection style costs in logic cells and what it buys in
// masked/detected fault coverage. This quantifies the §6 pointer to the
// radiation-tolerant version of the IP.
//
// The campaign is seeded: identical flags reproduce identical fault lists,
// so coverage numbers are comparable across configurations and runs.
//
// The plain configuration additionally classifies every fault as recovered
// or persistent through the triage retry (the same strike-free re-run the
// engine supervisor uses in place), and a rom-stuck row welds EDAC-masked
// stuck-at bits into the S-box ROMs — the fault class only the background
// scrubber can find.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rijndaelip"
	"rijndaelip/internal/edac"
	"rijndaelip/internal/faultcampaign"
	"rijndaelip/internal/netlist"
	"rijndaelip/internal/obs"
	"rijndaelip/internal/report"
)

// progress is the campaign's live observability surface: per-row outcome
// counters keyed by configuration and device, served over /metrics,
// /debug/vars and /debug/pprof while the (potentially hours-long, with
// -exhaustive) sweep runs.
type progress struct {
	reg  *obs.Registry
	rows *obs.Counter
}

func newProgress() *progress {
	p := &progress{reg: obs.NewRegistry()}
	p.rows = p.reg.Counter("faultcampaign_rows_total")
	return p
}

// record publishes one finished campaign row's outcome counts as
// constant counters and bumps the completed-row counter.
func (p *progress) record(config, device string, res *faultcampaign.Result) {
	l := []string{"config", config, "device", device}
	constant := func(family string, v uint64) {
		p.reg.CounterFunc(family, func() uint64 { return v }, l...)
	}
	constant("faultcampaign_trials_total", uint64(len(res.Trials)))
	constant("faultcampaign_masked_total", uint64(res.Count(faultcampaign.SilentCorrect)))
	constant("faultcampaign_detected_total", uint64(res.Count(faultcampaign.Detected)))
	constant("faultcampaign_corrupted_total", uint64(res.Count(faultcampaign.Corrupted)))
	constant("faultcampaign_hung_total", uint64(res.Count(faultcampaign.Hung)))
	constant("faultcampaign_recovered_total", uint64(res.Recovered))
	constant("faultcampaign_persistent_total", uint64(res.Persistent))
	p.rows.Add(1)
}

// serve exposes the progress registry on addr (plus pprof/expvar) for the
// duration of the campaign; the returned func shuts the listener down.
func (p *progress) serve(addr string) func() {
	if addr == "" {
		return func() {}
	}
	obs.PublishExpvar("faultcampaign", p.reg)
	srv, bound, err := obs.Serve(addr, p.reg, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("metrics: serving http://%s/metrics (plus /debug/vars, /debug/pprof)\n\n", bound)
	return func() { _ = srv.Close() }
}

func main() {
	trials := flag.Int("trials", 150, "sampled faults per configuration")
	seed := flag.Int64("seed", 2003, "campaign RNG seed")
	multibit := flag.Int("multibit", 1, "flip-flops struck per upset (1 = SEU, >1 = MBU)")
	device := flag.String("device", "all", "device to sweep: all, acex, cyclone")
	exhaustive := flag.Bool("exhaustive", false, "sweep every (flip-flop x cycle) fault instead of sampling")
	watchdog := flag.Int("watchdog", 0, "watchdog budget in cycles (0 = driver default)")
	romStuck := flag.Int("romstuck", 4, "welded stuck-at ROM bits per device for the rom-stuck row (0 disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve campaign progress on /metrics, /debug/vars and /debug/pprof at this address while the sweep runs (e.g. :9100)")
	simName := flag.String("sim", "compiled", "cycle-simulation backend for the DUT and lockstep shadow: compiled or interpreted")
	flag.Parse()

	var compiled bool
	switch *simName {
	case "compiled":
		compiled = true
	case "interpreted":
	default:
		fmt.Fprintf(os.Stderr, "faultcampaign: unknown sim backend %q (want compiled or interpreted)\n", *simName)
		os.Exit(2)
	}

	prog := newProgress()
	defer prog.serve(*metricsAddr)()

	type target struct {
		name string
		dev  rijndaelip.Device
	}
	var targets []target
	switch *device {
	case "all":
		targets = []target{{"Acex1K", rijndaelip.Acex1K()}, {"Cyclone", rijndaelip.Cyclone()}}
	case "acex":
		targets = []target{{"Acex1K", rijndaelip.Acex1K()}}
	case "cyclone":
		targets = []target{{"Cyclone", rijndaelip.Cyclone()}}
	default:
		fmt.Fprintf(os.Stderr, "faultcampaign: unknown device %q\n", *device)
		os.Exit(2)
	}

	var rows []report.FaultRow
	for _, tg := range targets {
		impl, err := rijndaelip.Build(rijndaelip.Encrypt, tg.dev)
		if err != nil {
			fatal(err)
		}
		hard, err := impl.Harden()
		if err != nil {
			fatal(err)
		}
		base := faultcampaign.Config{
			Core:     impl.Core,
			Trials:   *trials,
			Seed:     *seed,
			MultiBit: *multibit,
			Watchdog: *watchdog,
			Compiled: compiled,
		}
		// The plain row carries the transient-vs-persistent breakdown:
		// classification re-runs each struck transaction once, exactly like
		// the engine supervisor's in-place retry.
		plainCfg := with(base, impl.Netlist.Raw(), false)
		plainCfg.ClassifyPersistence = true
		configs := []struct {
			name     string
			cfg      faultcampaign.Config
			lcs, ffs int
		}{
			{"plain", plainCfg, impl.Fit.LogicCells, impl.Netlist.FFs},
			{"tmr", with(base, hard.Netlist, false), hard.Fit.LogicCells, len(hard.Netlist.FFs)},
			// Lockstep duplicates the whole core plus the output
			// comparator; 2x the plain fit is the area floor.
			{"lockstep", with(base, impl.Netlist.Raw(), true), 2 * impl.Fit.LogicCells, impl.Netlist.FFs},
		}
		for _, c := range configs {
			res, err := campaign(c.cfg, *exhaustive)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %-9s %v\n", tg.name, c.name+":", res)
			prog.record(c.name, tg.name, res)
			rows = append(rows, faultRow(c.name, tg.name, c.lcs, c.ffs, res))
		}
		if *romStuck > 0 {
			faults, err := stuckFaults(impl.Netlist.Raw(), *seed, *romStuck)
			if err != nil {
				fatal(err)
			}
			if faults == nil {
				// Logic-mapped S-boxes (Cyclone): no ROM storage to weld.
				fmt.Printf("%-8s %-9s no ROM storage (S-boxes in logic cells), row skipped\n", tg.name, "rom-stuck:")
				continue
			}
			res, err := faultcampaign.RunStuckAt(with(base, impl.Netlist.Raw(), false), faults)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %-9s %v\n", tg.name, "rom-stuck:", res)
			prog.record("rom-stuck", tg.name, res)
			rows = append(rows, faultRow("rom-stuck", tg.name, impl.Fit.LogicCells, impl.Netlist.FFs, res))
		}
	}

	fmt.Println()
	fmt.Println("Fault-injection campaign — coverage vs area (seeded SEU sweep, encrypt core)")
	fmt.Println()
	fmt.Print(report.RenderFaultTable(rows))
	fmt.Println()
	fmt.Println("(lockstep LCs are the dual-core floor: two replicas plus the cycle comparator)")
	fmt.Println()

	if violations := report.FaultShapeChecks(rows); len(violations) > 0 {
		fmt.Println("shape checks: VIOLATIONS")
		for _, v := range violations {
			fmt.Println("  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("shape checks: TMR strictly improves masked coverage; lockstep eliminates silent corruption")
}

func with(base faultcampaign.Config, nl *netlist.Netlist, lockstep bool) faultcampaign.Config {
	base.Netlist = nl
	base.Lockstep = lockstep
	return base
}

func faultRow(config, device string, lcs, ffs int, res *faultcampaign.Result) report.FaultRow {
	return report.FaultRow{
		Config: config, Device: device,
		LogicCells: lcs, FFs: ffs,
		Trials:     len(res.Trials),
		Masked:     res.Count(faultcampaign.SilentCorrect),
		Detected:   res.Count(faultcampaign.Detected),
		Corrupted:  res.Count(faultcampaign.Corrupted),
		Hung:       res.Count(faultcampaign.Hung),
		Classified: res.Classified,
		Recovered:  res.Recovered,
		Persistent: res.Persistent,
	}
}

// stuckFaults derives a seeded list of distinct welded ROM bits for the
// rom-stuck campaign row. Returns nil when the netlist maps its S-boxes
// to logic and has no ROM storage to weld.
func stuckFaults(nl *netlist.Netlist, seed int64, n int) ([]faultcampaign.ROMFault, error) {
	sim, err := netlist.NewSimulator(nl)
	if err != nil {
		return nil, err
	}
	if sim.NumROMs() == 0 {
		return nil, nil
	}
	rng := rand.New(rand.NewSource(seed))
	seen := map[faultcampaign.ROMFault]bool{}
	var faults []faultcampaign.ROMFault
	for len(faults) < n {
		f := faultcampaign.ROMFault{
			ROM:  rng.Intn(sim.NumROMs()),
			Word: rng.Intn(edac.Words),
			Bit:  rng.Intn(edac.CodeBits),
		}
		if seen[f] {
			continue
		}
		seen[f] = true
		faults = append(faults, f)
	}
	return faults, nil
}

func campaign(cfg faultcampaign.Config, exhaustive bool) (*faultcampaign.Result, error) {
	if exhaustive {
		return faultcampaign.Sweep(cfg)
	}
	return faultcampaign.Run(cfg)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcampaign:", err)
	os.Exit(1)
}
