// Command wavedump records a VCD waveform of one encrypt transaction
// through the simulated IP — the bus handshake of Figs. 8/9 (wr_key,
// wr_data, data_ok, din/dout) and the internal round machinery (state
// words, round key, round/phase counters) — for inspection in any waveform
// viewer (GTKWave etc.).
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"rijndaelip"
	"rijndaelip/internal/vcd"
)

func main() {
	out := flag.String("out", "aes128.vcd", "output VCD file")
	keyHex := flag.String("key", "2b7e151628aed2a6abf7158809cf4f3c", "128-bit key, hex")
	inHex := flag.String("in", "3243f6a8885a308d313198a2e0370734", "plaintext block, hex")
	flag.Parse()

	key, err := hex.DecodeString(*keyHex)
	if err != nil || len(key) != 16 {
		fmt.Fprintln(os.Stderr, "wavedump: key must be 32 hex digits")
		os.Exit(1)
	}
	block, err := hex.DecodeString(*inHex)
	if err != nil || len(block) != 16 {
		fmt.Fprintln(os.Stderr, "wavedump: block must be 32 hex digits")
		os.Exit(1)
	}

	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		fmt.Fprintln(os.Stderr, "wavedump:", err)
		os.Exit(1)
	}
	sim := impl.Core.Design.NewSimulator()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wavedump:", err)
		os.Exit(1)
	}
	defer f.Close()

	w := vcd.NewWriter(f, "aes128ip")
	clk := w.AddSignal("clk", 1)
	wrKey := w.AddSignal("wr_key", 1)
	wrData := w.AddSignal("wr_data", 1)
	setup := w.AddSignal("setup", 1)
	din := w.AddSignal("din", 128)
	dout := w.AddSignal("dout", 128)
	dataOk := w.AddSignal("data_ok", 1)
	regs := map[string]*vcd.Signal{}
	for _, r := range []struct {
		name  string
		width int
	}{
		{"s0", 32}, {"s1", 32}, {"s2", 32}, {"s3", 32},
		{"rk", 128}, {"rcon", 8}, {"round", 4}, {"phase", 3}, {"busy", 1},
	} {
		regs[r.name] = w.AddSignal(r.name, r.width)
	}
	w.Begin("1ns")

	period := impl.ClockNS()
	half := uint64(period / 2)
	if half == 0 {
		half = 1
	}

	sample := func(wrK, wrD, st uint64, dinBits []byte) {
		sim.SetInput("wr_key", wrK)
		sim.SetInput("wr_data", wrD)
		sim.SetInput("setup", st)
		if dinBits != nil {
			sim.SetInputBits("din", dinBits)
		}
		sim.Eval()
		wrKey.SetUint(wrK)
		wrData.SetUint(wrD)
		setup.SetUint(st)
		if dinBits != nil {
			din.Set(dinBits)
		}
		for name, sig := range regs {
			if v, ok := sim.RegValue(name); ok {
				sig.Set(v)
			}
		}
		if bits, err := sim.OutputBits("dout"); err == nil {
			dout.Set(bits)
		}
		if ok, err := sim.Output("data_ok"); err == nil {
			dataOk.SetUint(ok)
		}
		clk.SetUint(1)
		w.Step(half)
		clk.SetUint(0)
		w.Step(half)
		sim.Step()
	}

	// Key load, then the 50-cycle encrypt transaction plus a short tail.
	sample(1, 0, 1, key)
	sample(0, 1, 0, block)
	for i := 0; i < impl.Core.BlockLatency+3; i++ {
		sample(0, 0, 0, nil)
	}
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "wavedump:", err)
		os.Exit(1)
	}

	ct, err := sim.OutputBits("dout")
	if err == nil {
		fmt.Printf("wavedump: wrote %s (%d cycles at %.2f ns); dout = %x\n",
			*out, impl.Core.BlockLatency+5, period, ct)
	}
}
