// Command synthreport runs the complete synthesis flow — core generation,
// AIG construction, 4-LUT technology mapping, device fitting and static
// timing analysis — for every variant of the Rijndael IP on both of the
// paper's devices, and prints the reproduction of Table 2 next to the
// published numbers, followed by the qualitative shape checks.
//
// With -sync it additionally reports the paper's future-work variant:
// synchronous M4K ROM S-boxes on Cyclone (6 cycles per round).
package main

import (
	"flag"
	"fmt"
	"os"

	"rijndaelip"
	"rijndaelip/internal/report"
	"rijndaelip/internal/rtl"
)

func main() {
	syncToo := flag.Bool("sync", false, "also report the synchronous-ROM future-work variant on Cyclone")
	verbose := flag.Bool("v", false, "print per-cell fit and critical-path details")
	powerToo := flag.Bool("power", false, "also run the §6 future-work power analysis per variant")
	hardenToo := flag.Bool("harden", false, "also report the TMR-hardened (SEU-tolerant) builds")
	flag.Parse()

	pairs, err := rijndaelip.Table2()
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthreport:", err)
		os.Exit(1)
	}
	fmt.Println("Table 2 — performance and occupation (paper/measured)")
	fmt.Println()
	fmt.Print(report.RenderTable2(pairs))
	fmt.Println()

	violations := report.ShapeChecks(rijndaelip.MeasuredTable2(pairs))
	if len(violations) == 0 {
		fmt.Println("shape checks: all of the paper's qualitative claims hold on the reproduction")
	} else {
		fmt.Println("shape checks: VIOLATIONS")
		for _, v := range violations {
			fmt.Println("  -", v)
		}
	}

	if *verbose {
		fmt.Println()
		for _, v := range []rijndaelip.Variant{rijndaelip.Encrypt, rijndaelip.Decrypt, rijndaelip.Both} {
			for _, dev := range []rijndaelip.Device{rijndaelip.Acex1K(), rijndaelip.Cyclone()} {
				impl, err := rijndaelip.Build(v, dev)
				if err != nil {
					fmt.Fprintln(os.Stderr, "synthreport:", err)
					os.Exit(1)
				}
				fmt.Printf("--- %v on %s ---\n", v, dev.Name)
				fmt.Print(impl.Fit)
				fmt.Print(impl.Timing)
				fmt.Println()
			}
		}
	}

	if *powerToo {
		reportPower(rijndaelip.Acex1K())
		reportPower(rijndaelip.Cyclone())
	}
	if *hardenToo {
		reportHardened()
	}
	if *syncToo {
		fmt.Println()
		fmt.Println("Future work (paper §5): synchronous M4K ROM S-boxes on Cyclone (6 cycles/round)")
		style := rtl.ROMSync
		for _, v := range []rijndaelip.Variant{rijndaelip.Encrypt, rijndaelip.Decrypt, rijndaelip.Both} {
			impl, err := rijndaelip.Build(v, rijndaelip.Cyclone(), rijndaelip.Options{ROMStyle: &style})
			if err != nil {
				fmt.Fprintln(os.Stderr, "synthreport:", err)
				os.Exit(1)
			}
			fmt.Printf("  %-8v LC=%-5d mem=%-6d clk=%5.2fns latency=%4.0fns (%d cycles) throughput=%4.0f Mbps\n",
				v, impl.Fit.LogicCells, impl.Fit.MemoryBits, impl.ClockNS(),
				impl.LatencyNS(), impl.Core.BlockLatency, impl.ThroughputMbps())
		}
	}
}

// reportPower prints the §6 power analysis for the three variants on a
// device.
func reportPower(dev rijndaelip.Device) {
	fmt.Println()
	fmt.Printf("Power analysis (§6 future work) on %s, 8 blocks each:\n", dev.Name)
	key := []byte("synthreport-key!")
	for _, v := range []rijndaelip.Variant{rijndaelip.Encrypt, rijndaelip.Decrypt, rijndaelip.Both} {
		impl, err := rijndaelip.Build(v, dev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthreport:", err)
			os.Exit(1)
		}
		rep, err := impl.MeasurePower(key, 8)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthreport:", err)
			os.Exit(1)
		}
		perBlock := rep.DynamicEnergyNJ / 8
		fmt.Printf("  %-8v %6.1f mW at %.2f ns clk | %6.1f nJ/block (logic %.1f, regs %.1f, mem %.1f, clock %.1f nJ)\n",
			v, rep.PowerMW, impl.ClockNS(), perBlock,
			rep.LogicNJ/8, rep.RegisterNJ/8, rep.MemoryNJ/8, rep.ClockNJ/8)
	}
}

// reportHardened prints the TMR cost on the primary device.
func reportHardened() {
	fmt.Println()
	fmt.Println("TMR-hardened builds (SEU-tolerant registers, cf. paper ref [16]) on Acex1K:")
	for _, v := range []rijndaelip.Variant{rijndaelip.Encrypt, rijndaelip.Decrypt, rijndaelip.Both} {
		impl, err := rijndaelip.Build(v, rijndaelip.Acex1K())
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthreport:", err)
			os.Exit(1)
		}
		hard, err := impl.Harden()
		if err != nil {
			fmt.Printf("  %-8v %v\n", v, err)
			continue
		}
		fmt.Printf("  %-8v LC %d -> %d (+%.0f%%) | clk %.2f -> %.2f ns | %4.0f -> %4.0f Mbps | FFs x3 + %d voters\n",
			v, impl.Fit.LogicCells, hard.Fit.LogicCells,
			100*float64(hard.Fit.LogicCells-impl.Fit.LogicCells)/float64(impl.Fit.LogicCells),
			impl.ClockNS(), hard.ClockNS(),
			impl.ThroughputMbps(), hard.ThroughputMbps(), hard.Stats.VoterLUTs)
	}
}
