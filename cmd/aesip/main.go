// Command aesip pushes blocks through the cycle-accurate simulation of the
// Rijndael IP: it loads a key over the Table 1 bus interface, processes hex
// blocks, verifies every result against the FIPS-197 software reference
// and reports the protocol timing.
//
//	aesip -key 2b7e151628aed2a6abf7158809cf4f3c -in 3243f6a8885a308d313198a2e0370734
//	aesip -variant both -dec -key ... -in ...
//	aesip -shards 4 -in <block>,<block>,...   # sharded engine with a throughput report
//	aesip -chaos 50                           # live fault-injection run against a supervised engine
//	aesip -chaos 50 -stuckat 2                # mixed run: transient flips plus welded stuck-at ROM bits
package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"rijndaelip"
	"rijndaelip/internal/chaos"
	"rijndaelip/internal/obs"
	"rijndaelip/internal/rtl"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "aesip: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	keyHex := flag.String("key", "000102030405060708090a0b0c0d0e0f", "128-bit key, hex")
	inHex := flag.String("in", "00112233445566778899aabbccddeeff", "one or more 16-byte blocks, hex, comma separated")
	dec := flag.Bool("dec", false, "decrypt instead of encrypt")
	variantName := flag.String("variant", "", "device variant: encrypt, decrypt or both (default: matches the operation)")
	deviceName := flag.String("device", "acex", "device model: acex or cyclone")
	sync := flag.Bool("sync", false, "use the synchronous-ROM future-work core")
	shards := flag.Int("shards", 0, "process blocks through a sharded engine with N replicated cores (0: single-driver bus protocol path)")
	lanes := flag.Int("lanes", 0, "max blocks packed per lane-parallel submission, 1..64 (0: full 64-lane packing; engine mode only)")
	chaosRate := flag.Int("chaos", 0, "run the live chaos harness: strike a supervised engine about once per N submissions and verify every block (ignores -in)")
	chaosBlocks := flag.Int("chaos-blocks", 256, "blocks per chaos wave")
	chaosWaves := flag.Int("chaos-waves", 4, "chaos waves (respawned shards rejoin between waves)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the chaos traffic and strike schedule")
	stuckAt := flag.Int("stuckat", 0, "weld one stuck-at ROM bit into each of M shards during the chaos run (EDAC-masked: only the background scrubber can find them)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /trace, /debug/vars and /debug/pprof on this address during engine and chaos runs (e.g. :9100)")
	traceDump := flag.Bool("trace-dump", false, "print the supervision event trace after an engine or chaos run")
	simName := flag.String("sim", "compiled", "cycle-simulation backend for engine and chaos shards: compiled or interpreted")
	flag.Parse()

	var backend rijndaelip.SimBackend
	switch strings.ToLower(*simName) {
	case "compiled":
		backend = rijndaelip.SimCompiled
	case "interpreted":
		backend = rijndaelip.SimInterpreted
	default:
		fail("unknown sim backend %q (want compiled or interpreted)", *simName)
	}

	key, err := hex.DecodeString(*keyHex)
	if err != nil || len(key) != 16 {
		fail("key must be 32 hex digits")
	}

	variant := rijndaelip.Encrypt
	if *dec {
		variant = rijndaelip.Decrypt
	}
	switch strings.ToLower(*variantName) {
	case "":
	case "encrypt", "enc":
		variant = rijndaelip.Encrypt
	case "decrypt", "dec":
		variant = rijndaelip.Decrypt
	case "both":
		variant = rijndaelip.Both
	default:
		fail("unknown variant %q", *variantName)
	}

	var dev rijndaelip.Device
	switch strings.ToLower(*deviceName) {
	case "acex", "acex1k":
		dev = rijndaelip.Acex1K()
	case "cyclone":
		dev = rijndaelip.Cyclone()
	default:
		fail("unknown device %q", *deviceName)
	}

	var opts []rijndaelip.Options
	if *sync {
		style := rtl.ROMSync
		opts = append(opts, rijndaelip.Options{ROMStyle: &style})
	}
	impl, err := rijndaelip.Build(variant, dev, opts...)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("core %s on %s: %d LCs, %d memory bits, clk %.2f ns, %d cycles/block\n",
		impl.Core.Design.Name, dev.Name, impl.Fit.LogicCells, impl.Fit.MemoryBits,
		impl.ClockNS(), impl.Core.BlockLatency)

	var blocks [][]byte
	for _, blockHex := range strings.Split(*inHex, ",") {
		block, err := hex.DecodeString(strings.TrimSpace(blockHex))
		if err != nil || len(block) != 16 {
			fail("block %q must be 32 hex digits", blockHex)
		}
		blocks = append(blocks, block)
	}

	ref, err := rijndaelip.NewCipher(key)
	if err != nil {
		fail("%v", err)
	}

	if *chaosRate > 0 {
		runChaos(impl, key, *shards, *lanes, *chaosRate, *chaosBlocks, *chaosWaves, *stuckAt, *chaosSeed, backend, *metricsAddr, *traceDump)
		return
	}

	if *shards > 0 {
		runEngine(impl, key, blocks, ref, *shards, *lanes, *dec, backend, *metricsAddr, *traceDump)
		return
	}

	drv := impl.NewDriver()
	setupCycles, err := drv.LoadKey(key)
	if err != nil {
		fail("LoadKey: %v", err)
	}
	fmt.Printf("key loaded in %d cycles\n", setupCycles)

	for _, block := range blocks {
		out, cycles, err := drv.Process(block, !*dec)
		if err != nil {
			fail("process: %v", err)
		}
		want := make([]byte, 16)
		if *dec {
			ref.Decrypt(want, block)
		} else {
			ref.Encrypt(want, block)
		}
		status := "OK (matches FIPS-197 reference)"
		if !bytes.Equal(out, want) {
			status = fmt.Sprintf("MISMATCH (reference %x)", want)
		}
		op := "encrypt"
		if *dec {
			op = "decrypt"
		}
		fmt.Printf("%s %x -> %x  [%d cycles, %.0f ns at %.2f ns clk]  %s\n",
			op, block, out, cycles, float64(cycles)*impl.ClockNS(), impl.ClockNS(), status)
		if !bytes.Equal(out, want) {
			os.Exit(1)
		}
	}
}

// serveMetrics binds the observability endpoints for the duration of the
// run, announcing the scrape URL. Returns a closer (no-op when addr is
// empty or the engine has observability disabled).
func serveMetrics(addr string, eng *rijndaelip.Engine) func() {
	if addr == "" {
		return func() {}
	}
	obs.PublishExpvar("aesip_engine", eng.Metrics())
	srv, bound, err := obs.Serve(addr, eng.Metrics(), eng.Trace())
	if err != nil {
		fail("metrics: %v", err)
	}
	fmt.Printf("metrics: serving http://%s/metrics (plus /trace, /debug/vars, /debug/pprof)\n", bound)
	return func() { _ = srv.Close() }
}

// dumpTrace prints the supervision event trace, oldest first.
func dumpTrace(events []obs.Event, overwritten uint64) {
	if overwritten > 0 {
		fmt.Printf("trace: %d older events lost to ring wraparound\n", overwritten)
	}
	for _, ev := range events {
		fmt.Printf("trace: %s\n", ev)
	}
}

// runChaos drives seeded traffic through a supervised engine while the
// chaos injector strikes live shards (and optionally welds stuck-at ROM
// bits), then prints the triage report, localization log and per-shard
// health.
func runChaos(impl *rijndaelip.Implementation, key []byte, shards, lanes, rate, blocks, waves, stuckAt int, seed int64, backend rijndaelip.SimBackend, metricsAddr string, traceDump bool) {
	closeMetrics := func() {}
	rc := chaos.RunConfig{
		Shards:   shards, // 0 takes the harness default of 4
		MaxLanes: lanes,
		Blocks:   blocks,
		Waves:    waves,
		Baseline: true,
		Backend:  backend,
		Chaos:    chaos.Config{Seed: seed, Period: rate, StuckAt: stuckAt},
		OnEngine: func(eng *rijndaelip.Engine) { closeMetrics = serveMetrics(metricsAddr, eng) },
	}
	defer func() { closeMetrics() }()
	fmt.Printf("chaos: supervised engine under live strikes (about 1 per %d submissions, seed %d", rate, seed)
	if stuckAt > 0 {
		fmt.Printf(", %d welded stuck-at ROM bits", stuckAt)
	}
	fmt.Println(")")
	rep, err := chaos.Run(context.Background(), impl, key, rc)
	if err != nil {
		fail("chaos: %v", err)
	}
	fmt.Println(rep)
	fmt.Printf("triage: %d transients recovered in place, %d escalations, %d persistent classifications; scrub: %d sweeps, %d repaired, %d uncorrectable\n",
		rep.Stats.Transients, rep.Stats.Escalations, rep.Stats.Persistents,
		rep.Stats.ScrubSweeps, rep.Stats.ScrubCorrected, rep.Stats.ScrubUncorrectable)
	for _, d := range rep.Diagnoses {
		fmt.Printf("diagnosis: %v\n", d)
	}
	for _, p := range rep.Planted {
		fmt.Printf("planted: shard %d rom %s word 0x%02x bit %d\n", p.Shard, p.ROM, p.Word, p.Bit)
	}
	for _, ss := range rep.Stats.Shards {
		fmt.Printf("shard %d: %s (generation %d), %d blocks, %d detections (%d transient), %d quarantines, %d respawns\n",
			ss.Shard, ss.Health, ss.Generation, ss.Blocks, ss.Detections, ss.Transients, ss.Quarantines, ss.Respawns)
	}
	if traceDump {
		dumpTrace(rep.Trace, rep.TraceOverwritten)
	}
	if rep.Mismatches > 0 {
		fail("chaos: %d of %d blocks diverged from the software reference", rep.Mismatches, rep.Blocks)
	}
	if stuckAt > 0 && rep.Localized < len(rep.Planted) {
		fail("chaos: only %d of %d welded stuck-at ROM bits were localized", rep.Localized, len(rep.Planted))
	}
	fmt.Printf("all %d blocks bit-exact against the FIPS-197 reference\n", rep.Blocks)
}

// runEngine fans the blocks across a sharded pool of replicated cores and
// prints the per-shard and aggregate throughput report.
func runEngine(impl *rijndaelip.Implementation, key []byte, blocks [][]byte, ref interface {
	Encrypt(dst, src []byte)
	Decrypt(dst, src []byte)
}, shards, lanes int, dec bool, backend rijndaelip.SimBackend, metricsAddr string, traceDump bool) {
	eng, err := impl.NewEngine(key, rijndaelip.EngineOptions{Shards: shards, MaxLanes: lanes, Backend: backend})
	if err != nil {
		fail("engine: %v", err)
	}
	defer eng.Close()
	defer serveMetrics(metricsAddr, eng)()
	if lanes <= 0 || lanes > 64 {
		lanes = 64
	}
	fmt.Printf("engine: %d shards (each a fresh keyed %s simulation of %s, up to %d blocks per lane-packed submission)\n",
		shards, backend, impl.Core.Design.Name, lanes)

	outs, err := eng.Process(context.Background(), blocks, !dec)
	if err != nil {
		fail("engine process: %v", err)
	}
	op := "encrypt"
	if dec {
		op = "decrypt"
	}
	mismatched := false
	want := make([]byte, 16)
	for i, out := range outs {
		if dec {
			ref.Decrypt(want, blocks[i])
		} else {
			ref.Encrypt(want, blocks[i])
		}
		status := "OK"
		if !bytes.Equal(out, want) {
			status = fmt.Sprintf("MISMATCH (reference %x)", want)
			mismatched = true
		}
		fmt.Printf("%s %x -> %x  %s\n", op, blocks[i], out, status)
	}

	st := eng.Stats()
	for _, ss := range st.Shards {
		fmt.Printf("shard %d: %d blocks in %d submissions, %d cycles, %.2f cycles/block, %d stolen\n",
			ss.Shard, ss.Blocks, ss.Submissions, ss.Cycles, ss.CyclesPerBlock, ss.Stolen)
	}
	if traceDump {
		if ring := eng.Trace(); ring != nil {
			dumpTrace(ring.Snapshot(), ring.Overwritten())
		}
	}
	fmt.Printf("aggregate: %d blocks in %d submissions (lane occupancy %.1f%%, %d lanes idle), makespan %d cycles, %.2f cycles/block, %.1f Mbps at %.2f ns clk (single core: %.1f Mbps)\n",
		st.Blocks, st.Submissions, 100*st.LaneOccupancy, st.WastedLanes,
		st.MaxShardCycles, st.AggregateCyclesPerBlock, eng.Throughput(),
		impl.ClockNS(), impl.ThroughputMbps())
	if mismatched {
		os.Exit(1)
	}
}
