// Command netlistgen runs the synthesis flow for a chosen core variant and
// writes the technology-mapped netlist as structural Verilog or BLIF —
// the soft-IP deliverable form of the paper ("a soft IP description of
// Rijndael"), ready for downstream tools.
//
//	netlistgen -variant encrypt -device acex -format verilog -out aes128.v
//	netlistgen -variant both -device cyclone -format blif -out aes128.blif
//	netlistgen -verify   # additionally SAT-prove the netlist against the RTL
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rijndaelip"
	"rijndaelip/internal/dft"
	"rijndaelip/internal/rijndael"
	"rijndaelip/internal/rtl"
	"rijndaelip/internal/techmap"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "netlistgen: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	variantName := flag.String("variant", "encrypt", "encrypt, decrypt or both")
	deviceName := flag.String("device", "acex", "acex or cyclone (selects the S-box style)")
	format := flag.String("format", "verilog", "verilog or blif")
	out := flag.String("out", "", "output file (default stdout)")
	verify := flag.Bool("verify", false, "SAT-prove the netlist equivalent to the RTL before writing")
	scan := flag.Bool("scan", false, "insert a full scan chain (scan_en/scan_in/scan_out) before writing")
	atpg := flag.Bool("atpg", false, "run stuck-at ATPG and report fault coverage (implies -scan)")
	flag.Parse()

	var variant rijndaelip.Variant
	switch strings.ToLower(*variantName) {
	case "encrypt", "enc":
		variant = rijndaelip.Encrypt
	case "decrypt", "dec":
		variant = rijndaelip.Decrypt
	case "both":
		variant = rijndaelip.Both
	default:
		fail("unknown variant %q", *variantName)
	}
	style := rtl.ROMAsync
	switch strings.ToLower(*deviceName) {
	case "acex", "acex1k":
	case "cyclone":
		style = rtl.ROMLogic
	default:
		fail("unknown device %q", *deviceName)
	}

	core, err := rijndael.New(rijndael.Config{Variant: variant, ROMStyle: style})
	if err != nil {
		fail("%v", err)
	}
	res, err := core.Design.SynthesizeTracked(techmap.Options{})
	if err != nil {
		fail("%v", err)
	}
	if *verify {
		rep, err := res.Verify(500000)
		if err != nil {
			fail("formal verification FAILED: %v", err)
		}
		fmt.Fprintf(os.Stderr, "netlistgen: formally proved %d/%d obligations (%d undecided)\n",
			rep.Proved, rep.Obligations, len(rep.Undecided))
	}

	out2 := res.Netlist
	if *scan || *atpg {
		scanned, err := dft.InsertScan(res.Netlist)
		if err != nil {
			fail("%v", err)
		}
		out2 = scanned
		fmt.Fprintf(os.Stderr, "netlistgen: scan chain inserted through %d flip-flops\n", len(scanned.FFs))
	}
	if *atpg {
		r, err := dft.Generate(out2, 200000)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "netlistgen: ATPG %d faults, %d detected, %d redundant, %d aborted, %.2f%% coverage, %d deterministic patterns\n",
			r.TotalFaults, r.Detected, r.Redundant, r.Aborted, r.Coverage(), len(r.Patterns))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}
	switch strings.ToLower(*format) {
	case "verilog", "v":
		err = out2.WriteVerilog(w)
	case "blif":
		err = out2.WriteBLIF(w)
	default:
		fail("unknown format %q", *format)
	}
	if err != nil {
		fail("%v", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "netlistgen: wrote %s (%d LUTs, %d FFs, %d ROMs)\n",
			*out, out2.NumLUTs(), out2.NumFFs(), len(out2.ROMs))
	}
}
