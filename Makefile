# Convenience targets for the rijndaelip reproduction.

GO ?= go

.PHONY: all test short bench vet examples reports verify clean

all: vet test

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...
	gofmt -l . && test -z "$$(gofmt -l .)"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smartcard
	$(GO) run ./examples/backbone
	$(GO) run ./examples/securechannel

reports:
	$(GO) run ./cmd/synthreport -sync -power -harden
	$(GO) run ./cmd/ipcompare -ablation

verify:
	$(GO) run ./cmd/verifyall -full

clean:
	$(GO) clean ./...
	rm -f aes128.vcd aes128.v aes128.blif test_output.txt bench_output.txt
