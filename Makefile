# Convenience targets for the rijndaelip reproduction.

GO ?= go

.PHONY: all test short bench bench-smoke bench-json profile chaos-smoke triage-smoke obs-smoke vet lint race faults examples reports verify clean

all: vet test

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One pass over the sharded-engine scaling curve (1/2/4/8 shards) and the
# shards x lanes grid (1/16/64 blocks per lane-packed submission), on both
# the compiled-tape and interpreted simulation backends, plus the
# per-simulator Eval micro-benchmarks: a cheap smoke that surfaces
# throughput-scaling regressions without the full bench suite. The -run
# filter adds the observability overhead gate: an instrumented engine must
# hold >= 95% of an uninstrumented twin's throughput. Wired into `verify`
# alongside vet and the race sweep.
bench-smoke:
	$(GO) test -run '^TestObsOverheadGate$$' -bench '^Benchmark(Engine|VectorLanes|ChaosRecovery)$$' -benchtime=1x .
	$(GO) test -run '^$$' -bench '^Benchmark(NetlistEval|RTLEval)$$' -benchtime=1x ./internal/netlist/ ./internal/rtl/

# Machine-readable perf trajectory: runs the engine benchmarks and writes
# cycles-per-block, Mbps and blocks/sec for every shards x lanes point —
# plus the supervised engine's chaos-recovery and triage/scrub counters
# (detections, transients, in-place recoveries, quarantines, respawns,
# scrub sweeps/corrected/uncorrectable) and the observability registry's
# final snapshot — to BENCH_engine.json, so regressions are diffable
# across PRs. The chaos_recovery faultfree/scrub row pair is the
# scrub-overhead measurement. Each sub-benchmark runs one untimed warmup
# iteration plus twenty timed ones, three times over (-count=3, best run
# kept per grid point): rates come from the warm steady state, not shard
# construction cold-start, and best-of-three damps the single-CPU
# scheduling jitter a lone run can lose a few percent to.
bench-json:
	BENCH_JSON=BENCH_engine.json $(GO) test -run '^$$' -timeout 40m -bench '^Benchmark(Engine|VectorLanes|ChaosRecovery)$$' -benchtime=20x -count=3 .
	@echo wrote BENCH_engine.json

# CPU and allocation profiles of the engine benchmark grid, captured over
# the same /debug/pprof exposition mount production engines serve via
# -metrics-addr (see internal/obs): the bench harness binds a loopback
# observability server, streams a PPROF_SECONDS CPU profile while the
# benchmarks run, and snapshots the allocation profile afterwards.
# Inspect with `go tool pprof profiles/cpu.pprof`.
profile:
	mkdir -p profiles
	PPROF_DIR=profiles PPROF_SECONDS=$${PPROF_SECONDS:-30} $(GO) test -run '^$$' -bench '^Benchmark(Engine|VectorLanes)$$' -benchtime=10x .

# A short seeded chaos run under the race detector: live strikes against a
# supervised 4-shard engine, every block checked against the software
# reference, quarantine/respawn/overhead gates enforced. Wired into
# `verify`.
chaos-smoke:
	$(GO) test -race -short -run '^TestChaosGate$$' -v ./internal/chaos/

# The mixed-fault triage gate under the race detector: seeded transient
# flips PLUS welded stuck-at ROM bits into the same live pool. Transients
# must recover in place; the EDAC-masked stuck-ats must be found by the
# background scrubber, localized to the exact ROM word, and healed by
# quarantine + respawn; zero mismatches. Wired into `verify`.
triage-smoke:
	$(GO) test -race -short -run '^TestTriageGate$$' -v ./internal/chaos/

# The observability smoke under the race detector: a supervised engine
# absorbs a welded fault while its registry and trace ring are scraped
# over live HTTP; the detection → persistent → quarantine → respawn
# ladder must be reconstructible from the trace ring alone, and the
# torn-snapshot stress must hold the Stats() invariants. Wired into
# `verify`.
obs-smoke:
	$(GO) test -race -short -run '^(TestObsSmoke|TestStatsSnapshotInvariants)$$' -v .

vet:
	$(GO) vet ./...
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

# The full static verification suite: design-rule lint + structure reports
# over the three paper cores, the static compiled-tape audit for both
# simulators, and the stdlib-only source analyzers over every package.
# Exits nonzero on any finding. Wired into `verify`.
lint:
	$(GO) run ./cmd/lint

# The race detector roughly 10x-es the cycle-accurate simulations, so the
# racy-path sweep runs the -short suite; the full suite is covered by `test`.
race:
	$(GO) test -race -short ./...

faults:
	$(GO) run ./cmd/faultcampaign

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smartcard
	$(GO) run ./examples/backbone
	$(GO) run ./examples/securechannel

reports:
	$(GO) run ./cmd/synthreport -sync -power -harden
	$(GO) run ./cmd/ipcompare -ablation

verify: vet lint race bench-smoke obs-smoke chaos-smoke triage-smoke
	$(GO) run ./cmd/verifyall -full

clean:
	$(GO) clean ./...
	rm -f aes128.vcd aes128.v aes128.blif test_output.txt bench_output.txt BENCH_engine.json
	rm -rf profiles
