# Convenience targets for the rijndaelip reproduction.

GO ?= go

.PHONY: all test short bench bench-smoke vet race faults examples reports verify clean

all: vet test

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# One pass over the sharded-engine scaling curve (1/2/4/8 shards): a cheap
# smoke that surfaces throughput-scaling regressions without the full
# bench suite. Wired into `verify` alongside vet and the race sweep.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkEngine$$' -benchtime=1x .

vet:
	$(GO) vet ./...
	gofmt -l . && test -z "$$(gofmt -l .)"

# The race detector roughly 10x-es the cycle-accurate simulations, so the
# racy-path sweep runs the -short suite; the full suite is covered by `test`.
race:
	$(GO) test -race -short ./...

faults:
	$(GO) run ./cmd/faultcampaign

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/smartcard
	$(GO) run ./examples/backbone
	$(GO) run ./examples/securechannel

reports:
	$(GO) run ./cmd/synthreport -sync -power -harden
	$(GO) run ./cmd/ipcompare -ablation

verify: vet race bench-smoke
	$(GO) run ./cmd/verifyall -full

clean:
	$(GO) clean ./...
	rm -f aes128.vcd aes128.v aes128.blif test_output.txt bench_output.txt
