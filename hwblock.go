package rijndaelip

import (
	"fmt"

	"rijndaelip/internal/bfm"
)

// HardwareBlock adapts a bus-functional driver over the simulated IP to
// the 16-byte block-cipher interface used by the modes package (and by
// crypto/cipher). Every Encrypt/Decrypt call is a full 50-cycle bus
// transaction against the cycle-accurate simulation, so software protocols
// (CBC, CTR, GCM, CMAC...) can be validated end to end against the
// hardware the flow signs off.
//
// The block interface has no error returns; protocol failures (which
// cannot happen on a correctly generated core) and buffer misuse (src or
// dst shorter than one block) are recorded and surfaced via Err, and the
// affected output is zeroed instead of panicking or truncating silently.
type HardwareBlock struct {
	drv *bfm.Driver
	err error
	// Cycles accumulates the total simulated clock cycles spent.
	Cycles uint64
}

// NewHardwareBlock loads the key into a fresh driver for the
// implementation's core and returns the block adapter.
func (im *Implementation) NewHardwareBlock(key []byte) (*HardwareBlock, error) {
	drv := im.NewDriver()
	if _, err := drv.LoadKey(key); err != nil {
		return nil, err
	}
	return &HardwareBlock{drv: drv}, nil
}

// BlockSize returns 16.
func (h *HardwareBlock) BlockSize() int { return 16 }

// Err returns the first protocol error encountered, if any.
func (h *HardwareBlock) Err() error { return h.err }

func (h *HardwareBlock) process(dst, src []byte, encrypt bool) {
	if len(src) < 16 || len(dst) < 16 {
		if h.err == nil {
			h.err = fmt.Errorf("rijndaelip: hardware block: need 16-byte src and dst, got src=%d dst=%d",
				len(src), len(dst))
		}
		zeroBlock(dst)
		return
	}
	if h.err != nil {
		zeroBlock(dst)
		return
	}
	out, cycles, err := h.drv.Process(src[:16], encrypt)
	if err != nil {
		h.err = fmt.Errorf("rijndaelip: hardware block: %w", err)
		zeroBlock(dst)
		return
	}
	h.Cycles += uint64(cycles)
	copy(dst, out)
}

// Encrypt runs one block through the simulated core in the encrypt
// direction.
func (h *HardwareBlock) Encrypt(dst, src []byte) { h.process(dst, src, true) }

// Decrypt runs one block through the simulated core in the decrypt
// direction.
func (h *HardwareBlock) Decrypt(dst, src []byte) { h.process(dst, src, false) }
