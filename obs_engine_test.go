// Observability-layer tests over the live engine: the exposition smoke
// (scrape a real HTTP endpoint mid-recovery and reconstruct the ladder
// from the trace ring alone), the instrumentation-overhead gate, and the
// Stats snapshot-consistency invariants under concurrent chaos load.
package rijndaelip_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rijndaelip"
	"rijndaelip/internal/netlist"
	"rijndaelip/internal/obs"
)

// ladderSeq reports whether the shard's events contain kinds as a
// subsequence, in order — the trace-only ladder reconstruction check.
func ladderSeq(events []obs.Event, shard int, kinds ...obs.Kind) bool {
	i := 0
	for _, ev := range events {
		if ev.Shard == shard && ev.Kind == kinds[i] {
			if i++; i == len(kinds) {
				return true
			}
		}
	}
	return false
}

// TestObsSmoke drives a strike through a supervised engine while its
// metrics and trace are served over HTTP: the scrape must show the
// registry's series, and the whole detection → persistent → quarantine →
// respawn ladder must be reconstructible from the trace ring alone (and
// from the /trace endpoint). This is the `make obs-smoke` gate.
func TestObsSmoke(t *testing.T) {
	impl := supImpl(t)
	key := []byte("obs-smoke-key-00")
	var strikeOnce sync.Once
	eng, err := impl.NewEngine(key, rijndaelip.EngineOptions{
		Shards:   2,
		MaxLanes: 2,
		Supervise: &rijndaelip.SupervisorOptions{
			Check: rijndaelip.CheckLockstep,
			Strike: func(shard int, submission uint64, sim *netlist.Simulator) {
				if shard != 0 {
					return
				}
				strikeOnce.Do(func() {
					sim.StickFF(sim.FindFF("s0[0]"), false)
				})
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	srv, addr, err := obs.Serve("127.0.0.1:0", eng.Metrics(), eng.Trace())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	src := make([]byte, 24*16)
	for i := range src {
		src[i] = byte(i ^ 0x5A)
	}
	got, err := eng.EncryptECB(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	checkECB(t, got, src, key)
	waitEngine(t, eng, "respawn after strike", func(st rijndaelip.EngineStats) bool {
		return st.Respawns >= 1 && st.HealthyShards == 2
	})

	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	metrics := scrape("/metrics")
	for _, want := range []string{
		`aesip_engine_blocks_total{shard="0"}`,
		`aesip_engine_detections_total{shard="0"}`,
		`aesip_engine_submit_latency_ns_bucket{shard="1",le="+Inf"}`,
		"aesip_engine_healthy_shards 2",
		"# TYPE aesip_engine_submit_latency_ns histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if out := scrape("/trace"); !strings.Contains(out, `"kind":"respawn"`) {
		t.Errorf("/trace missing the respawn event:\n%s", out)
	}

	// The recovery story must replay from the ring alone: the struck shard
	// walks detection → persistent classification → quarantine → respawn,
	// in that order, with generations and a cause attached.
	events := eng.Trace().Snapshot()
	if !ladderSeq(events, 0, obs.KindDetection, obs.KindPersistent, obs.KindQuarantine, obs.KindRespawn) {
		t.Errorf("trace does not replay the recovery ladder for shard 0: %v", events)
	}
	for _, ev := range events {
		if ev.Kind == obs.KindDetection && ev.Shard == 0 && ev.Cause == "" {
			t.Errorf("detection event carries no cause: %v", ev)
		}
		if ev.Kind == obs.KindRespawn && ev.Generation < 2 {
			t.Errorf("respawn event generation = %d, want >= 2: %v", ev.Generation, ev)
		}
	}

	// The histogram must have timed every successful submission.
	snap := eng.Metrics().Snapshot()
	latCount := snap[`aesip_engine_submit_latency_ns{shard="0"}_count`] +
		snap[`aesip_engine_submit_latency_ns{shard="1"}_count`]
	if latCount == 0 {
		t.Error("submit-latency histograms observed nothing")
	}
}

// TestObsOverheadGate holds the instrumentation to its budget: a default
// (instrumented) engine must sustain at least 95% of the throughput of an
// identical engine built with DisableObs. Best-of-N timing on both sides
// damps single-CPU scheduling noise.
func TestObsOverheadGate(t *testing.T) {
	impl := supImpl(t)
	key := []byte("obs-overhead-key")
	src := make([]byte, 128*16)
	for i := range src {
		src[i] = byte(i * 13)
	}
	rounds := 5
	if testing.Short() {
		rounds = 3
	}
	best := func(disable bool) float64 {
		eng, err := impl.NewEngine(key, rijndaelip.EngineOptions{
			Shards: 2, MaxLanes: 16, DisableObs: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if (eng.Metrics() == nil) != disable || (eng.Trace() == nil) != disable {
			t.Fatalf("DisableObs=%v but Metrics/Trace nil-ness disagrees", disable)
		}
		if _, err := eng.EncryptECB(context.Background(), src); err != nil { // warmup
			t.Fatal(err)
		}
		bestRate := 0.0
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if _, err := eng.EncryptECB(context.Background(), src); err != nil {
				t.Fatal(err)
			}
			if rate := 128 / time.Since(start).Seconds(); rate > bestRate {
				bestRate = rate
			}
		}
		return bestRate
	}
	plain := best(true)
	instrumented := best(false)
	t.Logf("blocks/sec: uninstrumented %.1f, instrumented %.1f (ratio %.3f)",
		plain, instrumented, instrumented/plain)
	if instrumented < 0.95*plain {
		t.Errorf("instrumentation overhead exceeds 5%%: %.1f vs %.1f blocks/sec (ratio %.3f)",
			instrumented, plain, instrumented/plain)
	}
}

// TestEngineThroughputZeroBlocks pins the division-by-zero guards: a
// freshly built engine that has processed nothing reports zero
// throughput and zero aggregate rates instead of NaN/Inf.
func TestEngineThroughputZeroBlocks(t *testing.T) {
	impl := supImpl(t)
	eng, err := impl.NewEngine([]byte("zero-blocks-key0"), rijndaelip.EngineOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if tp := eng.Throughput(); tp != 0 {
		t.Errorf("Throughput with zero blocks = %v, want 0", tp)
	}
	st := eng.Stats()
	if st.Blocks != 0 || st.AggregateCyclesPerBlock != 0 || st.LaneOccupancy != 0 {
		t.Errorf("zero-traffic stats not zero: %+v", st)
	}
	for _, ss := range st.Shards {
		if ss.CyclesPerBlock != 0 {
			t.Errorf("shard %d CyclesPerBlock = %v with no blocks", ss.Shard, ss.CyclesPerBlock)
		}
	}
}

// TestStatsQuarantinedShardSnapshot snapshots a pool with one shard
// parked dead by the respawn circuit breaker: the per-shard health, the
// healthy-shard count and the aggregate counters must describe the same
// instant, and the trace must record the shard-dead verdict.
func TestStatsQuarantinedShardSnapshot(t *testing.T) {
	impl := supImpl(t)
	key := []byte("quarantine-snap0")
	var strikeOnce sync.Once
	eng, err := impl.NewEngine(key, rijndaelip.EngineOptions{
		Shards:   2,
		MaxLanes: 2,
		Supervise: &rijndaelip.SupervisorOptions{
			Check:              rijndaelip.CheckLockstep,
			MaxRespawnFailures: 2,
			RespawnHook: func(shard, attempt int) error {
				if shard == 0 {
					return errTestRespawnVeto
				}
				return nil
			},
			Strike: func(shard int, submission uint64, sim *netlist.Simulator) {
				if shard != 0 {
					return
				}
				strikeOnce.Do(func() {
					sim.StickFF(sim.FindFF("s0[0]"), false)
				})
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	src := make([]byte, 24*16)
	for i := range src {
		src[i] = byte(i * 17)
	}
	got, err := eng.EncryptECB(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	checkECB(t, got, src, key)
	st := waitEngine(t, eng, "circuit breaker on shard 0", func(st rijndaelip.EngineStats) bool {
		return st.Shards[0].Health == "dead"
	})
	if st.HealthyShards != 1 || st.Degraded {
		t.Errorf("one-dead-shard pool: healthy=%d degraded=%v, want 1/false", st.HealthyShards, st.Degraded)
	}
	if ss := st.Shards[0]; ss.Quarantines != 1 || ss.Respawns != 0 || ss.Generation != 1 {
		t.Errorf("dead shard counters: %+v, want 1 quarantine, 0 respawns, gen 1", ss)
	}
	if st.Quarantines != st.Shards[0].Quarantines+st.Shards[1].Quarantines {
		t.Errorf("aggregate quarantines %d != sum of shard counters", st.Quarantines)
	}
	if st.RespawnFailures < 2 {
		t.Errorf("respawn failures = %d, want >= 2 (vetoed attempts)", st.RespawnFailures)
	}
	events := eng.Trace().Snapshot()
	if !ladderSeq(events, 0, obs.KindQuarantine, obs.KindRespawnFailure, obs.KindShardDead) {
		t.Errorf("trace missing quarantine → respawn-failure → shard-dead for shard 0: %v", events)
	}
}

var errTestRespawnVeto = respawnVetoError{}

type respawnVetoError struct{}

func (respawnVetoError) Error() string { return "test: replica slot vetoed" }

// TestStatsSnapshotInvariants is the -race stress for the snapshot fix:
// while a supervised pool absorbs periodic strikes, a reader hammers
// Stats() and asserts the monotonic invariants the load ordering
// guarantees — no torn snapshot may show a retry without its detection,
// an escalation without its persistent classification, or a respawn
// without its quarantine.
func TestStatsSnapshotInvariants(t *testing.T) {
	impl := supImpl(t)
	key := []byte("snapshot-inv-key")
	var n atomic.Uint64
	eng, err := impl.NewEngine(key, rijndaelip.EngineOptions{
		Shards:   2,
		MaxLanes: 2,
		Supervise: &rijndaelip.SupervisorOptions{
			Check:           rijndaelip.CheckLockstep,
			TransientBudget: 1,
			TransientWindow: 16,
			Strike: func(shard int, submission uint64, sim *netlist.Simulator) {
				// One transient flip roughly every 6th submission across the
				// pool keeps detections, transients, escalations, quarantines
				// and respawns all moving while the reader snapshots.
				if n.Add(1)%6 == 0 {
					sim.ScheduleFlipLanes(9, 1, sim.FindFF("s0[0]"))
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	src := make([]byte, 16*16)
	for i := range src {
		src[i] = byte(i * 23)
	}
	waves := 4
	if testing.Short() {
		waves = 2
	}
	done := make(chan error, 1)
	go func() {
		for w := 0; w < waves; w++ {
			if _, err := eng.EncryptECB(context.Background(), src); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	var lastBlocks uint64
	snapshots := 0
	check := func() {
		st := eng.Stats()
		snapshots++
		if st.Retries > st.Detections {
			t.Fatalf("torn snapshot: %d retries > %d detections", st.Retries, st.Detections)
		}
		if st.Transients > st.InPlaceRecoveries || st.InPlaceRecoveries > st.Detections {
			t.Fatalf("torn snapshot: transients %d / in-place %d / detections %d out of order",
				st.Transients, st.InPlaceRecoveries, st.Detections)
		}
		if st.Escalations > st.Persistents {
			t.Fatalf("torn snapshot: %d escalations > %d persistents", st.Escalations, st.Persistents)
		}
		if st.Respawns > st.Quarantines || st.Quarantines > st.Persistents {
			t.Fatalf("torn snapshot: respawns %d / quarantines %d / persistents %d out of order",
				st.Respawns, st.Quarantines, st.Persistents)
		}
		if st.Blocks < lastBlocks {
			t.Fatalf("blocks went backwards: %d -> %d", lastBlocks, st.Blocks)
		}
		lastBlocks = st.Blocks
		// Aggregates must be exactly the sum of the same snapshot's shards.
		var det, qua, resp uint64
		for _, ss := range st.Shards {
			det += ss.Detections
			qua += ss.Quarantines
			resp += ss.Respawns
		}
		if det != st.Detections || qua != st.Quarantines || resp != st.Respawns {
			t.Fatalf("aggregates diverge from shard sums: %+v", st)
		}
	}
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			check()
			if st := eng.Stats(); st.Detections == 0 {
				t.Error("stress produced no detections; invariants were not exercised")
			}
			t.Logf("validated %d snapshots", snapshots)
			return
		default:
			check()
		}
	}
}
