package rijndaelip

import (
	"fmt"

	"rijndaelip/internal/baseline"
	"rijndaelip/internal/fpga"
	"rijndaelip/internal/report"
	"rijndaelip/internal/rtl"
	"rijndaelip/internal/techmap"
	"rijndaelip/internal/timing"
)

// BaselineResult is one synthesized baseline architecture (Table 3 /
// ablation row).
type BaselineResult struct {
	Core   *baseline.Core
	Device Device
	Fit    fpga.FitResult
	Timing timing.Result
	// FitError is set when the architecture does not fit the device (the
	// fully parallel core on the low-cost part), with zero Fit/Timing.
	FitError error
}

// ClockNS returns the baseline's minimum period.
func (r *BaselineResult) ClockNS() float64 { return r.Timing.Period }

// LatencyNS returns cycles times period.
func (r *BaselineResult) LatencyNS() float64 {
	return r.Timing.Period * float64(r.Core.BlockLatency)
}

// ThroughputMbps returns 128 bits over the block latency.
func (r *BaselineResult) ThroughputMbps() float64 {
	lat := r.LatencyNS()
	if lat == 0 {
		return 0
	}
	return 128 / lat * 1000
}

// BaselineWidth selects a baseline architecture by datapath width.
type BaselineWidth int

// Baseline datapath widths.
const (
	Width8   BaselineWidth = 8
	Width32  BaselineWidth = 32
	Width128 BaselineWidth = 128
)

// BuildBaseline synthesizes a baseline encryptor onto a device.
func BuildBaseline(w BaselineWidth, dev Device) (*BaselineResult, error) {
	style := pickStyle(dev)
	var core *baseline.Core
	var err error
	switch w {
	case Width8:
		core, err = baseline.New8(style)
	case Width32:
		core, err = baseline.New32(style)
	case Width128:
		core, err = baseline.New128(style)
	default:
		return nil, fmt.Errorf("rijndaelip: unknown baseline width %d", int(w))
	}
	if err != nil {
		return nil, err
	}
	nl, err := core.Design.Synthesize(techmap.Options{})
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{Core: core, Device: dev}
	fit, err := fpga.Fit(nl, dev)
	if err != nil {
		res.FitError = err
		return res, nil
	}
	res.Fit = fit
	sta, err := timing.Analyze(nl, dev.Delay)
	if err != nil {
		return nil, err
	}
	res.Timing = sta
	return res, nil
}

func pickStyle(dev Device) rtl.ROMStyle {
	if dev.SupportsAsyncROM {
		return rtl.ROMAsync
	}
	return rtl.ROMLogic
}

// Table3 assembles the paper's Table 3: the published literature rows plus
// measured rows for this work's three variants on Acex1K and for the
// reimplemented baseline architectures standing in for the comparison
// cores whose figures are illegible in the archived paper text.
func Table3() ([]report.Table3Row, error) {
	rows := append([]report.Table3Row(nil), report.PaperTable3...)

	// Reimplemented comparison architectures.
	w8, err := BuildBaseline(Width8, Acex1K())
	if err != nil {
		return nil, err
	}
	rows = append(rows, report.Table3Row{
		Author: "low-cost 8-bit (reimpl., cf. [14])", Technology: "Acex1K",
		MemoryBits: w8.Fit.MemoryBits, LCsEncrypt: w8.Fit.LogicCells,
		ThroughputE: w8.ThroughputMbps(),
	})
	w128, err := BuildBaseline(Width128, Apex20KE())
	if err != nil {
		return nil, err
	}
	rows = append(rows, report.Table3Row{
		Author: "128-bit parallel (reimpl., cf. [1],[15])", Technology: "Apex20KE",
		MemoryBits: w128.Fit.MemoryBits, LCsEncrypt: w128.Fit.LogicCells,
		ThroughputE: w128.ThroughputMbps(),
	})

	// This work, on the paper's primary device.
	var lcs [3]int
	var mbps [3]float64
	var mem int
	for i, v := range []Variant{Encrypt, Decrypt, Both} {
		impl, err := Build(v, Acex1K())
		if err != nil {
			return nil, err
		}
		lcs[i] = impl.Fit.LogicCells
		mbps[i] = impl.ThroughputMbps()
		if v == Both {
			mem = impl.Fit.MemoryBits
		}
	}
	rows = append(rows, report.Table3Row{
		Author: "this work (mixed 32/128)", Technology: "Acex1K",
		MemoryBits:  mem,
		LCsEncrypt:  lcs[0],
		LCsDecrypt:  lcs[1],
		LCsCombined: lcs[2],
		ThroughputE: mbps[0],
		ThroughputD: mbps[1],
		ThroughputC: mbps[2],
	})
	return rows, nil
}
