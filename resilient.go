package rijndaelip

import (
	"errors"
	"fmt"
	"sync"

	"rijndaelip/internal/aes"
	"rijndaelip/internal/bfm"
	"rijndaelip/internal/faultcampaign"
	"rijndaelip/internal/netlist"
	"rijndaelip/internal/obs"
	"rijndaelip/internal/rijndael"
)

// CheckPolicy selects how a ResilientBlock detects a corrupted
// transaction before handing the result to the caller.
type CheckPolicy int

const (
	// CheckNone relies on the BFM watchdog and fixed-latency protocol
	// assertion alone: hung or mistimed transactions are caught, silent
	// data corruption is not.
	CheckNone CheckPolicy = iota
	// CheckLockstep runs the core as a dual-modular-redundant pair: an
	// independent shadow replica is stepped cycle-for-cycle and any
	// divergence of the observable outputs flags the transaction.
	CheckLockstep
	// CheckInverse round-trips every result through the opposite
	// direction on the same device (requires the combined Both variant):
	// decrypt(encrypt(x)) must give back x. Costs a second transaction
	// per block but needs no duplicated hardware.
	CheckInverse
)

// ResilientOptions tunes the detect → retry → degrade policy.
type ResilientOptions struct {
	// Check is the detection mechanism (default CheckNone).
	Check CheckPolicy
	// RetryBudget is how many times a detected-bad block is retried on
	// fresh hardware state before the block counts as failed. Default 2.
	RetryBudget int
	// MaxFailures is how many consecutive failed blocks are tolerated
	// before the adapter degrades permanently to the software reference.
	// Default 3.
	MaxFailures int
	// Watchdog overrides the BFM cycle budget for hung transactions
	// (0 keeps the driver's 4x-latency default).
	Watchdog int
	// Corrupt, when set, is invoked before every hardware attempt with
	// the per-block attempt ordinal and the primary simulator — the hook
	// fault campaigns and tests use to model a radiation environment
	// (schedule transient upsets, install stuck-at defects).
	Corrupt func(attempt int, sim *netlist.Simulator)
}

// ResilientStats counts what the recovery policy actually did.
type ResilientStats struct {
	// HardwareBlocks and SoftwareBlocks split the processed blocks by the
	// path that produced the returned result.
	HardwareBlocks uint64
	SoftwareBlocks uint64
	// Detections counts checker hits (lockstep divergence, failed inverse
	// check, latency assertion); Timeouts counts watchdog expiries.
	Detections uint64
	Timeouts   uint64
	// Retries counts fresh-state hardware re-runs; Failures counts blocks
	// whose whole retry budget was exhausted.
	Retries  uint64
	Failures uint64
	// ConsecutiveFailures is the current run of failed blocks; when it
	// reaches MaxFailures the adapter sets Degraded and stops using the
	// hardware path.
	ConsecutiveFailures int
	Degraded            bool
	// Cycles accumulates the simulated clock cycles spent on the hardware
	// path, including retries and inverse-check transactions.
	Cycles uint64
}

// ResilientBlock wraps the simulated core in a self-checking,
// self-recovering 16-byte block interface: transactions are bounded by a
// watchdog, optionally cross-checked (lockstep replica or inverse
// operation), retried on fresh simulator state when a fault is detected,
// and — past MaxFailures consecutive failed blocks — gracefully degraded
// to the software reference cipher so callers keep receiving correct
// ciphertext while the hardware is out of service.
//
// Unlike HardwareBlock, a detected hardware fault is not an error the
// caller sees: it is absorbed by the recovery policy. Err reports only
// unrecoverable protocol misuse (short buffers).
//
// ResilientBlock is safe for concurrent use: there is one simulated device
// behind the adapter, so concurrent Encrypt/Decrypt calls serialize on an
// internal mutex (one bus transaction at a time), and the Stats/Degraded/
// Err/Cycles accessors take the same lock — every counter, including the
// cycle account, is safe to snapshot while blocks are in flight.
type ResilientBlock struct {
	impl *Implementation
	opts ResilientOptions
	key  []byte
	soft *aes.Cipher

	drv  *bfm.Driver
	main *netlist.Simulator
	lock *faultcampaign.Lockstep

	// mu serializes bus transactions and guards stats and err.
	mu    sync.Mutex
	stats ResilientStats
	err   error

	// ring traces the adapter's detect → retry → degrade transitions.
	// Shard is always -1: there is one device behind the adapter.
	ring *obs.Ring
}

// NewResilientBlock builds the resilient adapter over a post-synthesis
// simulation of the implementation's mapped netlist (gate-level, so fault
// campaigns can strike real flip-flops), loads the key, and arms the
// checkers requested in opts.
func (im *Implementation) NewResilientBlock(key []byte, opts ResilientOptions) (*ResilientBlock, error) {
	if opts.RetryBudget <= 0 {
		opts.RetryBudget = 2
	}
	if opts.MaxFailures <= 0 {
		opts.MaxFailures = 3
	}
	if opts.Check == CheckInverse && im.Core.Config.Variant != rijndael.Both {
		return nil, fmt.Errorf("rijndaelip: inverse check needs the combined variant, core is %v", im.Core.Config.Variant)
	}
	soft, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	r := &ResilientBlock{
		impl: im,
		opts: opts,
		key:  append([]byte(nil), key...),
		soft: soft,
		ring: obs.NewRing(256),
	}
	main, err := netlist.NewSimulator(im.Netlist.nl)
	if err != nil {
		return nil, err
	}
	r.main = main
	var sim bfm.Sim = main
	if opts.Check == CheckLockstep {
		shadow, err := netlist.NewSimulator(im.Netlist.nl)
		if err != nil {
			return nil, err
		}
		r.lock = faultcampaign.NewLockstep(main, shadow)
		sim = r.lock
	}
	r.drv = bfm.NewPostSynthesis(im.Core, sim)
	r.drv.AssertLatency = true
	if opts.Watchdog > 0 {
		r.drv.Timeout = opts.Watchdog
	}
	if _, err := r.drv.LoadKey(r.key); err != nil {
		return nil, err
	}
	return r, nil
}

// BlockSize returns 16.
func (r *ResilientBlock) BlockSize() int { return 16 }

// Err returns the first protocol-misuse error, if any.
func (r *ResilientBlock) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Stats returns a snapshot of the recovery counters. It is safe to call
// while other goroutines are processing blocks.
func (r *ResilientBlock) Stats() ResilientStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Cycles returns the simulated clock cycles spent on the hardware path.
//
// Deprecated: use Stats().Cycles. Cycles was once an exported field that
// raced with concurrent Encrypt/Decrypt calls; it is kept as a
// synchronized accessor for callers of the former field.
func (r *ResilientBlock) Cycles() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats.Cycles
}

// Degraded reports whether the adapter has given up on the hardware path
// and is serving blocks from the software reference.
func (r *ResilientBlock) Degraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats.Degraded
}

// Trace returns the adapter's event-trace ring: every watchdog expiry,
// checker detection, fresh-state retry, and the degradation transition,
// timestamped and in order. The ring holds the last 256 events.
func (r *ResilientBlock) Trace() *obs.Ring { return r.ring }

// Encrypt processes one block, recovering from (or degrading around) any
// injected hardware fault.
func (r *ResilientBlock) Encrypt(dst, src []byte) { r.process(dst, src, true) }

// Decrypt is the decrypt-direction counterpart of Encrypt.
func (r *ResilientBlock) Decrypt(dst, src []byte) { r.process(dst, src, false) }

func (r *ResilientBlock) process(dst, src []byte, encrypt bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(src) < 16 || len(dst) < 16 {
		if r.err == nil {
			r.err = fmt.Errorf("rijndaelip: resilient block: need 16-byte src and dst, got src=%d dst=%d",
				len(src), len(dst))
		}
		zeroBlock(dst)
		return
	}
	if r.err != nil {
		zeroBlock(dst)
		return
	}
	if !r.stats.Degraded {
		if out, ok := r.hardware(src[:16], encrypt); ok {
			r.stats.HardwareBlocks++
			r.stats.ConsecutiveFailures = 0
			copy(dst, out)
			return
		}
		r.stats.Failures++
		r.stats.ConsecutiveFailures++
		if r.stats.ConsecutiveFailures >= r.opts.MaxFailures {
			r.stats.Degraded = true
			r.ring.Emit(obs.Event{Kind: obs.KindDegraded, Shard: -1,
				Detail: fmt.Sprintf("%d consecutive failed blocks", r.stats.ConsecutiveFailures)})
		}
	}
	// Graceful degradation: the software reference keeps the data flowing
	// with the hardware path out of service.
	r.stats.SoftwareBlocks++
	if encrypt {
		r.soft.Encrypt(dst, src)
	} else {
		r.soft.Decrypt(dst, src)
	}
}

// hardware runs one block through the simulated core under the configured
// detection policy, retrying on fresh state within the retry budget.
func (r *ResilientBlock) hardware(src []byte, encrypt bool) ([]byte, bool) {
	for attempt := 0; ; attempt++ {
		if r.opts.Corrupt != nil {
			r.opts.Corrupt(attempt, r.main)
		}
		out, cycles, err := r.drv.Process(src, encrypt)
		r.stats.Cycles += uint64(cycles)
		if err == nil && r.opts.Check == CheckInverse {
			back, invCycles, invErr := r.drv.Process(out, !encrypt)
			r.stats.Cycles += uint64(invCycles)
			if invErr != nil {
				err = invErr
			} else if !bytesEqual16(back, src) {
				err = fmt.Errorf("rijndaelip: inverse check mismatch")
			}
		}
		diverged := false
		if r.lock != nil {
			_, _, diverged = r.lock.Mismatch()
		}
		if err == nil && !diverged {
			return out, true
		}
		if errors.Is(err, bfm.ErrTimeout) {
			r.stats.Timeouts++
			r.ring.Emit(obs.Event{Kind: obs.KindTimeout, Shard: -1,
				Attempt: attempt, Detail: err.Error()})
		} else {
			r.stats.Detections++
			detail := "lockstep divergence"
			if err != nil {
				detail = err.Error()
			}
			r.ring.Emit(obs.Event{Kind: obs.KindDetection, Shard: -1,
				Attempt: attempt, Detail: detail})
		}
		// Fresh hardware state for the next try (or the next block): a
		// transient upset is flushed by the reset; a hard defect will
		// fail again and drive the degradation counter instead.
		r.rebuild()
		if attempt >= r.opts.RetryBudget {
			return nil, false
		}
		r.stats.Retries++
		r.ring.Emit(obs.Event{Kind: obs.KindRetry, Shard: -1, Attempt: attempt + 1})
	}
}

// rebuild resets the simulation (both replicas under lockstep, clearing
// the comparator) and reloads the key, giving retries a clean machine.
func (r *ResilientBlock) rebuild() {
	r.drv.Reset()
	if _, err := r.drv.LoadKey(r.key); err != nil && r.err == nil {
		r.err = err
	}
}

func zeroBlock(dst []byte) {
	n := len(dst)
	if n > 16 {
		n = 16
	}
	for i := 0; i < n; i++ {
		dst[i] = 0
	}
}

func bytesEqual16(a, b []byte) bool {
	if len(a) < 16 || len(b) < 16 {
		return false
	}
	for i := 0; i < 16; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
