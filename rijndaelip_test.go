package rijndaelip_test

import (
	"bytes"
	"encoding/hex"
	"testing"

	"rijndaelip"
	"rijndaelip/internal/report"
	"rijndaelip/internal/rtl"
)

// table2Cache builds the six Table 2 cells once for all tests in this
// package.
var table2Cache []report.Table2Pair

func table2(t testing.TB) []report.Table2Pair {
	if table2Cache == nil {
		pairs, err := rijndaelip.Table2()
		if err != nil {
			t.Fatal(err)
		}
		table2Cache = pairs
	}
	return table2Cache
}

// TestTable2Reproduction is the headline experiment: every qualitative
// claim of the paper's Table 2 must hold on the measured reproduction, and
// the quantitative values must land near the published ones.
func TestTable2Reproduction(t *testing.T) {
	pairs := table2(t)
	if len(pairs) != 6 {
		t.Fatalf("expected 6 cells, got %d", len(pairs))
	}
	if v := report.ShapeChecks(rijndaelip.MeasuredTable2(pairs)); len(v) != 0 {
		t.Fatalf("shape violations:\n%s", report.RenderTable2(pairs)+"\n"+joinLines(v))
	}
	for _, p := range pairs {
		// Hard identities: memory bits and pins must match the paper
		// exactly; latency cycles are fixed by the architecture.
		if p.Measured.MemoryBits != p.Paper.MemoryBits {
			t.Errorf("%s/%s: memory %d, paper %d", p.Paper.Variant, p.Paper.Device,
				p.Measured.MemoryBits, p.Paper.MemoryBits)
		}
		if p.Measured.Pins != p.Paper.Pins {
			t.Errorf("%s/%s: pins %d, paper %d", p.Paper.Variant, p.Paper.Device,
				p.Measured.Pins, p.Paper.Pins)
		}
		// Soft bands: the absolute area/timing figures depend on a
		// synthesis toolchain we rebuilt from scratch; require the same
		// order of magnitude (within a factor band) rather than equality.
		if ratio := float64(p.Measured.LCs) / float64(p.Paper.LCs); ratio < 0.5 || ratio > 1.7 {
			t.Errorf("%s/%s: LCs %d vs paper %d (ratio %.2f out of band)",
				p.Paper.Variant, p.Paper.Device, p.Measured.LCs, p.Paper.LCs, ratio)
		}
		if ratio := p.Measured.ClkNS / p.Paper.ClkNS; ratio < 0.6 || ratio > 1.6 {
			t.Errorf("%s/%s: clk %.1f vs paper %.1f (ratio %.2f out of band)",
				p.Paper.Variant, p.Paper.Device, p.Measured.ClkNS, p.Paper.ClkNS, ratio)
		}
		if ratio := p.Measured.ThroughputMbps / p.Paper.ThroughputMbps; ratio < 0.6 || ratio > 1.7 {
			t.Errorf("%s/%s: throughput %.0f vs paper %.0f (ratio %.2f out of band)",
				p.Paper.Variant, p.Paper.Device, p.Measured.ThroughputMbps, p.Paper.ThroughputMbps, ratio)
		}
	}
}

func joinLines(v []string) string {
	out := ""
	for _, s := range v {
		out += s + "\n"
	}
	return out
}

// TestBothPenalty reproduces the §5 finding that running encrypt and
// decrypt on the same device costs around 22% of throughput.
func TestBothPenalty(t *testing.T) {
	pairs := table2(t)
	cells := rijndaelip.MeasuredTable2(pairs)
	for _, dev := range []string{"Acex1K", "Cyclone"} {
		var enc, both float64
		for _, c := range cells {
			if c.Device != dev {
				continue
			}
			switch c.Variant {
			case "Encrypt":
				enc = c.ThroughputMbps
			case "Both":
				both = c.ThroughputMbps
			}
		}
		penalty := 1 - both/enc
		if penalty < 0.05 || penalty > 0.40 {
			t.Errorf("%s: both-vs-encrypt penalty %.0f%%, paper reports ~22%%", dev, penalty*100)
		}
	}
}

// TestCycloneROMExpansion reproduces the §5 finding that Cyclone cannot
// implement asynchronous ROM: memory is zero and the S-boxes inflate the
// LC count.
func TestCycloneROMExpansion(t *testing.T) {
	cells := rijndaelip.MeasuredTable2(table2(t))
	for _, v := range []string{"Encrypt", "Decrypt", "Both"} {
		var acex, cyc report.Table2Cell
		for _, c := range cells {
			if c.Variant != v {
				continue
			}
			if c.Device == "Acex1K" {
				acex = c
			} else {
				cyc = c
			}
		}
		if cyc.MemoryBits != 0 {
			t.Errorf("%s: Cyclone used %d memory bits", v, cyc.MemoryBits)
		}
		if cyc.LCs <= acex.LCs {
			t.Errorf("%s: Cyclone LCs %d not above Acex %d", v, cyc.LCs, acex.LCs)
		}
	}
}

func TestBuildRejectsBadCombos(t *testing.T) {
	// Forcing async ROM onto Cyclone must fail in the fitter.
	style := rtl.ROMAsync
	_, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Cyclone(),
		rijndaelip.Options{ROMStyle: &style})
	if err == nil {
		t.Fatal("async ROM on Cyclone was accepted")
	}
}

func TestSyncROMVariant(t *testing.T) {
	style := rtl.ROMSync
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Cyclone(),
		rijndaelip.Options{ROMStyle: &style})
	if err != nil {
		t.Fatal(err)
	}
	if impl.Core.BlockLatency != 60 {
		t.Errorf("sync variant latency %d cycles, want 60", impl.Core.BlockLatency)
	}
	if impl.Fit.MemoryBits != 16384 {
		t.Errorf("sync variant memory %d, want 16384 (M4K blocks restored)", impl.Fit.MemoryBits)
	}
	// The future-work variant must beat the logic-expanded Cyclone build on
	// throughput despite 10 more cycles.
	base, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Cyclone())
	if err != nil {
		t.Fatal(err)
	}
	if impl.ThroughputMbps() <= base.ThroughputMbps() {
		t.Errorf("sync ROM %.0f Mbps does not beat logic S-boxes %.0f Mbps",
			impl.ThroughputMbps(), base.ThroughputMbps())
	}
	// And it must use far fewer logic cells.
	if impl.Fit.LogicCells >= base.Fit.LogicCells {
		t.Errorf("sync ROM LCs %d not below logic S-box LCs %d",
			impl.Fit.LogicCells, base.Fit.LogicCells)
	}
	// Functional check through the driver.
	drv := impl.NewDriver()
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	pt, _ := hex.DecodeString("3243f6a8885a308d313198a2e0370734")
	ct, _ := hex.DecodeString("3925841d02dc09fbdc118597196a0b32")
	drv.LoadKey(key)
	got, _, err := drv.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ct) {
		t.Fatalf("sync core encrypt = %x", got)
	}
}

// TestKeySchedLimit reproduces §6's claim that the wide architecture is
// limited by the key schedule: the 128-bit baseline's critical path passes
// through the KStran S-box bank.
func TestKeySchedLimit(t *testing.T) {
	r, err := rijndaelip.BuildBaseline(rijndaelip.Width128, rijndaelip.Apex20KE())
	if err != nil {
		t.Fatal(err)
	}
	if r.FitError != nil {
		t.Fatal(r.FitError)
	}
	found := false
	for _, step := range r.Timing.Critical {
		if step.What == "ROM" && len(step.Name) >= 6 && step.Name[:6] == "sbox_k" {
			found = true
		}
	}
	if !found {
		t.Errorf("128-bit core critical path does not traverse the KStran bank:\n%s", r.Timing)
	}
	// And it must not fit the low-cost device.
	low, err := rijndaelip.BuildBaseline(rijndaelip.Width128, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	if low.FitError == nil {
		t.Error("128-bit core unexpectedly fit EP1K100")
	}
}

// TestAblationOrdering reproduces the §4/§6 architecture comparison: the
// mixed 32/128 organization beats both serial widths on throughput at
// comparable (or lower) area.
func TestAblationOrdering(t *testing.T) {
	w8, err := rijndaelip.BuildBaseline(rijndaelip.Width8, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	w32, err := rijndaelip.BuildBaseline(rijndaelip.Width32, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	if !(w8.ThroughputMbps() < w32.ThroughputMbps() &&
		w32.ThroughputMbps() < mixed.ThroughputMbps()) {
		t.Errorf("throughput ordering broken: w8=%.0f w32=%.0f mixed=%.0f",
			w8.ThroughputMbps(), w32.ThroughputMbps(), mixed.ThroughputMbps())
	}
	// §6: the 8-bit core's extra cycles are not bought back by its clock.
	if w8.ClockNS() < mixed.ClockNS() {
		t.Errorf("8-bit clock %.1f unexpectedly faster than mixed %.1f", w8.ClockNS(), mixed.ClockNS())
	}
	// The mixed core must not cost dramatically more area than the all-32
	// one (the paper accepts a small premium for 2.4x throughput).
	if ratio := float64(mixed.Fit.LogicCells) / float64(w32.Fit.LogicCells); ratio > 1.3 {
		t.Errorf("mixed/32-bit area ratio %.2f too high", ratio)
	}
}

func TestTable3Assembly(t *testing.T) {
	rows, err := rijndaelip.Table3()
	if err != nil {
		t.Fatal(err)
	}
	var thisWork, lowCost *float64
	for i := range rows {
		switch {
		case rows[i].Author == "this work (mixed 32/128)":
			thisWork = &rows[i].ThroughputE
		case rows[i].Author == "low-cost 8-bit (reimpl., cf. [14])":
			lowCost = &rows[i].ThroughputE
		}
	}
	if thisWork == nil || lowCost == nil {
		t.Fatal("Table 3 missing measured rows")
	}
	if *thisWork <= *lowCost {
		t.Errorf("this work (%.0f Mbps) should beat the low-cost core (%.0f Mbps)", *thisWork, *lowCost)
	}
	if len(rows) < 7 {
		t.Errorf("Table 3 has only %d rows", len(rows))
	}
}

func TestPublicAPISurface(t *testing.T) {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		t.Fatal(err)
	}
	if impl.Netlist.LUTs == 0 || impl.Netlist.FFs == 0 || impl.Netlist.Raw() == nil {
		t.Error("netlist info incomplete")
	}
	if impl.Netlist.Pins != 261 || impl.Netlist.MemoryBits != 16384 {
		t.Errorf("netlist info: %+v", impl.Netlist)
	}
	if impl.ClockNS() <= 0 || impl.LatencyNS() <= 0 || impl.ThroughputMbps() <= 0 {
		t.Error("timing accessors broken")
	}
	cell := impl.Table2Cell()
	if cell.Variant != "Encrypt" || cell.Device != "Acex1K" {
		t.Errorf("Table2Cell: %+v", cell)
	}
	c, err := rijndaelip.NewCipher(make([]byte, 16))
	if err != nil || c.BlockSize() != 16 {
		t.Error("NewCipher facade broken")
	}
}
