package rijndaelip

import (
	"fmt"

	"rijndaelip/internal/fpga"
	"rijndaelip/internal/netlist"
	"rijndaelip/internal/timing"
	"rijndaelip/internal/tmr"
)

// HardenedResult is a TMR-hardened build of an implementation: the §6
// future-work pointer to a radiation-tolerant version of the IP, with its
// area and timing cost measured through the same fitter and STA.
type HardenedResult struct {
	Base    *Implementation
	Netlist *netlist.Netlist
	Stats   tmr.Stats
	Fit     fpga.FitResult
	Timing  timing.Result
}

// Harden triplicates every register of the mapped netlist with majority
// voters (see internal/tmr) and re-runs fitting and timing on the device.
func (im *Implementation) Harden() (*HardenedResult, error) {
	hard, st, err := tmr.Harden(im.Netlist.nl)
	if err != nil {
		return nil, err
	}
	fit, err := fpga.Fit(hard, im.Device)
	if err != nil {
		return nil, fmt.Errorf("rijndaelip: hardened core does not fit: %w", err)
	}
	sta, err := timing.Analyze(hard, im.Device.Delay)
	if err != nil {
		return nil, err
	}
	return &HardenedResult{Base: im, Netlist: hard, Stats: st, Fit: fit, Timing: sta}, nil
}

// ClockNS returns the hardened build's minimum period.
func (h *HardenedResult) ClockNS() float64 { return h.Timing.Period }

// ThroughputMbps returns the hardened build's throughput.
func (h *HardenedResult) ThroughputMbps() float64 {
	lat := h.Timing.Period * float64(h.Base.Core.BlockLatency)
	if lat == 0 {
		return 0
	}
	return 128 / lat * 1000
}
