// Package rijndaelip is the public API of this repository: a full
// reproduction of "A Low Device Occupation IP to Implement Rijndael
// Algorithm" (Panato, Barcelos, Reis — DATE 2003).
//
// The package generates the paper's AES-128 soft IP in its three variants
// (encrypt-only, decrypt-only, combined), runs it through a complete
// synthesis flow built from scratch in this repository (AIG logic
// synthesis, priority-cut 4-LUT technology mapping, device fitting with
// register packing and embedded-memory allocation, static timing
// analysis), and simulates the resulting design cycle-accurately against a
// FIPS-197 software reference.
//
// Quick start:
//
//	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
//	drv := impl.NewDriver()
//	drv.LoadKey(key)
//	ciphertext, cycles, err := drv.Encrypt(plaintext)
//	fmt.Println(impl.ThroughputMbps())
package rijndaelip

import (
	"fmt"

	"rijndaelip/internal/aes"
	"rijndaelip/internal/bfm"
	"rijndaelip/internal/fpga"
	"rijndaelip/internal/netlist"
	"rijndaelip/internal/place"
	"rijndaelip/internal/rijndael"
	"rijndaelip/internal/route"
	"rijndaelip/internal/rtl"
	"rijndaelip/internal/techmap"
	"rijndaelip/internal/timing"
)

// Variant selects the device capabilities, re-exported from the core
// generator.
type Variant = rijndael.Variant

// Device variants (the paper's three implementations).
const (
	Encrypt = rijndael.Encrypt
	Decrypt = rijndael.Decrypt
	Both    = rijndael.Both
)

// Device is an FPGA model from the catalog.
type Device = fpga.Device

// Acex1K returns the paper's EP1K100FC484-1 device model.
func Acex1K() Device { return fpga.EP1K100() }

// Cyclone returns the paper's EP1C20F400C6 device model.
func Cyclone() Device { return fpga.EP1C20() }

// Apex20KE returns the Apex-class device model used for the Table 3
// high-performance comparisons.
func Apex20KE() Device { return fpga.EP20K400E() }

// Options tunes Build beyond the defaults.
type Options struct {
	// ROMStyle overrides the S-box realization. Left zero, Build picks the
	// paper's choice for the device: asynchronous EAB ROM when the device
	// supports it, LUT logic otherwise. Set rtl.ROMSync to build the
	// paper's future-work synchronous-ROM variant.
	ROMStyle *rtl.ROMStyle
}

// Implementation bundles everything the flow produced for one variant on
// one device: the generated core, the mapped netlist, the fit and the
// timing closure — i.e. one cell of the paper's Table 2.
type Implementation struct {
	Core    *rijndael.Core
	Device  Device
	Netlist NetlistInfo
	Fit     fpga.FitResult
	Timing  timing.Result
}

// NetlistInfo carries the mapped netlist together with summary counts.
type NetlistInfo struct {
	LUTs       int
	FFs        int
	ROMs       int
	MemoryBits int
	Pins       int

	nl *netlist.Netlist
}

// Raw exposes the underlying mapped netlist for tools that need it
// (waveform dumps, custom analyses).
func (n NetlistInfo) Raw() *netlist.Netlist { return n.nl }

// Build generates the requested variant, synthesizes it, fits it onto the
// device and runs timing analysis.
func Build(v Variant, dev Device, opts ...Options) (*Implementation, error) {
	style := styleFor(dev, opts)
	core, err := rijndael.New(rijndael.Config{Variant: v, ROMStyle: style})
	if err != nil {
		return nil, fmt.Errorf("rijndaelip: generate core: %w", err)
	}
	return buildImpl(core, dev)
}

// Build256 runs the flow for the AES-256 extension core (14 rounds,
// 70-cycle latency, two-beat key load) on a device.
func Build256(v Variant, dev Device, opts ...Options) (*Implementation, error) {
	style := styleFor(dev, opts)
	core, err := rijndael.New256(v, style)
	if err != nil {
		return nil, fmt.Errorf("rijndaelip: generate AES-256 core: %w", err)
	}
	return buildImpl(core, dev)
}

func styleFor(dev Device, opts []Options) rtl.ROMStyle {
	style := rtl.ROMAsync
	if !dev.SupportsAsyncROM {
		style = rtl.ROMLogic
	}
	for _, o := range opts {
		if o.ROMStyle != nil {
			style = *o.ROMStyle
		}
	}
	return style
}

func buildImpl(core *rijndael.Core, dev Device) (*Implementation, error) {
	nl, err := core.Design.Synthesize(techmap.Options{})
	if err != nil {
		return nil, fmt.Errorf("rijndaelip: synthesize: %w", err)
	}
	fit, err := fpga.Fit(nl, dev)
	if err != nil {
		return nil, fmt.Errorf("rijndaelip: fit: %w", err)
	}
	sta, err := timing.Analyze(nl, dev.Delay)
	if err != nil {
		return nil, fmt.Errorf("rijndaelip: timing: %w", err)
	}
	return &Implementation{
		Core:   core,
		Device: dev,
		Netlist: NetlistInfo{
			LUTs:       nl.NumLUTs(),
			FFs:        nl.NumFFs(),
			ROMs:       len(nl.ROMs),
			MemoryBits: nl.MemoryBits(),
			Pins:       nl.PinCount(),
			nl:         nl,
		},
		Fit:    fit,
		Timing: sta,
	}, nil
}

// ClockNS returns the minimum clock period in nanoseconds (the paper's
// "Clk" column).
func (im *Implementation) ClockNS() float64 { return im.Timing.Period }

// LatencyNS returns the block latency in nanoseconds: cycles times clock
// period (the paper's "Latency" column).
func (im *Implementation) LatencyNS() float64 {
	return im.Timing.Period * float64(im.Core.BlockLatency)
}

// ThroughputMbps returns 128 bits divided by the block latency (the
// paper's definition of throughput).
func (im *Implementation) ThroughputMbps() float64 {
	lat := im.LatencyNS()
	if lat == 0 {
		return 0
	}
	return 128 / lat * 1000
}

// NewDriver returns a bus-functional driver over a fresh cycle-accurate
// simulation of the generated core.
func (im *Implementation) NewDriver() *bfm.Driver { return bfm.New(im.Core) }

// NewCipher returns the from-scratch FIPS-197 software reference cipher
// (16/24/32-byte keys), the golden model the hardware is checked against.
func NewCipher(key []byte) (*aes.Cipher, error) { return aes.NewCipher(key) }

// NewPostSynthesisDriver returns a bus-functional driver over a gate-level
// simulation of the technology-mapped netlist (post-synthesis sign-off):
// the same Table 1 transactions run against the LUT/FF/ROM netlist that
// the fitter and timing analyzer saw.
func (im *Implementation) NewPostSynthesisDriver() (*bfm.Driver, error) {
	sim, err := netlist.NewSimulator(im.Netlist.nl)
	if err != nil {
		return nil, err
	}
	return bfm.NewPostSynthesis(im.Core, sim), nil
}

// PlacedResult is a placement-aware refinement of an implementation's
// timing: the netlist is placed on the device's LAB grid by simulated
// annealing and STA is rerun with per-net wirelength delays.
type PlacedResult struct {
	HPWL        float64
	InitialHPWL float64
	Timing      timing.Result
}

// PlaceAndTime places the mapped netlist on the device grid (deterministic
// under seed) and reruns timing with placement-aware routing delays.
func (im *Implementation) PlaceAndTime(seed uint64) (*PlacedResult, error) {
	grid := place.GridFor(im.Device.LogicElements, im.Device.LABSize)
	res, err := place.Place(im.Netlist.nl, grid, seed)
	if err != nil {
		return nil, err
	}
	sta, err := timing.AnalyzePlaced(im.Netlist.nl, im.Device.Delay, res.NetLength, im.Device.WirePitchNS)
	if err != nil {
		return nil, err
	}
	return &PlacedResult{HPWL: res.HPWL, InitialHPWL: res.InitialHPWL, Timing: sta}, nil
}

// PlaceRouteResult carries the full physical-implementation refinement:
// placement, negotiated-congestion routing, and STA over the routed
// wirelengths.
type PlaceRouteResult struct {
	Placement *place.Result
	Routing   *route.Result
	Timing    timing.Result
}

// PlaceRouteAndTime runs the complete back end on the mapped netlist:
// simulated-annealing placement on the device LAB grid, PathFinder global
// routing, and timing analysis using the routed per-net wirelengths.
func (im *Implementation) PlaceRouteAndTime(seed uint64) (*PlaceRouteResult, error) {
	grid := place.GridFor(im.Device.LogicElements, im.Device.LABSize)
	pl, err := place.Place(im.Netlist.nl, grid, seed)
	if err != nil {
		return nil, err
	}
	rt, err := route.Route(im.Netlist.nl, pl, route.DefaultConfig())
	if err != nil {
		return nil, err
	}
	sta, err := timing.AnalyzePlaced(im.Netlist.nl, im.Device.Delay, rt.NetLength, im.Device.WirePitchNS)
	if err != nil {
		return nil, err
	}
	return &PlaceRouteResult{Placement: pl, Routing: rt, Timing: sta}, nil
}
