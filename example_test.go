package rijndaelip_test

import (
	"fmt"

	"rijndaelip"
	"rijndaelip/internal/modes"
)

// ExampleBuild runs the complete flow for the paper's primary
// configuration and prints the architectural constants (the calibrated
// analog figures vary with the delay models, so the example sticks to the
// exact ones).
func ExampleBuild() {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		panic(err)
	}
	fmt.Println("cycles per round:", impl.Core.CyclesPerRound)
	fmt.Println("block latency:", impl.Core.BlockLatency)
	fmt.Println("memory bits:", impl.Fit.MemoryBits)
	fmt.Println("pins:", impl.Fit.Pins)
	// Output:
	// cycles per round: 5
	// block latency: 50
	// memory bits: 16384
	// pins: 261
}

// ExampleImplementation_NewDriver pushes the FIPS-197 Appendix B vector
// through the cycle-accurate simulation.
func ExampleImplementation_NewDriver() {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		panic(err)
	}
	drv := impl.NewDriver()
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	if _, err := drv.LoadKey(key); err != nil {
		panic(err)
	}
	ct, cycles, err := drv.Encrypt(pt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%x in %d cycles\n", ct, cycles)
	// Output:
	// 3925841d02dc09fbdc118597196a0b32 in 50 cycles
}

// ExampleNewCipher uses the software reference directly.
func ExampleNewCipher() {
	key := make([]byte, 16)
	c, err := rijndaelip.NewCipher(key)
	if err != nil {
		panic(err)
	}
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	c.Encrypt(ct, pt)
	fmt.Printf("%x\n", ct[:8])
	// Output:
	// 66e94bd4ef8a2c3b
}

// ExampleImplementation_NewHardwareBlock runs a CMAC where every block
// operation is a simulated bus transaction.
func ExampleImplementation_NewHardwareBlock() {
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		panic(err)
	}
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	hw, err := impl.NewHardwareBlock(key)
	if err != nil {
		panic(err)
	}
	mac, err := modes.CMAC(hw, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%x\n", mac[:8])
	// Output:
	// bb1d6929e9593728
}
