// Smartcard: the paper's low-cost scenario — "a low cost and small design
// can be used in smart card applications". This example explores the
// area corner of the design space on the low-cost Acex1K part:
//
//   - the paper's advice to drop the unused direction (an encrypt-only
//     device instead of the combined core);
//   - how far an even smaller (byte-serial) datapath can shrink the
//     memory, and what it costs in throughput (§6's conclusion that the
//     extra cycles are not bought back by the clock);
//   - a functional check of the chosen encrypt-only core.
package main

import (
	"bytes"
	"fmt"
	"log"

	"rijndaelip"
)

func main() {
	fmt.Println("area options on EP1K100FC484-1 (low-cost Acex1K):")
	fmt.Println()

	type row struct {
		name string
		lcs  int
		mem  int
		mbps float64
	}
	var rows []row

	both, err := rijndaelip.Build(rijndaelip.Both, rijndaelip.Acex1K())
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"combined enc+dec (convenient)", both.Fit.LogicCells,
		both.Fit.MemoryBits, both.ThroughputMbps()})

	enc, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"encrypt-only (paper's advice)", enc.Fit.LogicCells,
		enc.Fit.MemoryBits, enc.ThroughputMbps()})

	w8, err := rijndaelip.BuildBaseline(rijndaelip.Width8, rijndaelip.Acex1K())
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"byte-serial 8-bit (smaller?)", w8.Fit.LogicCells,
		w8.Fit.MemoryBits, w8.ThroughputMbps()})

	fmt.Printf("  %-30s %8s %10s %8s\n", "core", "LCs", "mem bits", "Mbps")
	for _, r := range rows {
		fmt.Printf("  %-30s %8d %10d %8.0f\n", r.name, r.lcs, r.mem, r.mbps)
	}
	fmt.Println()
	fmt.Printf("dropping the decryptor saves %d LCs and %d memory bits;\n",
		both.Fit.LogicCells-enc.Fit.LogicCells, both.Fit.MemoryBits-enc.Fit.MemoryBits)
	fmt.Printf("the byte-serial core saves another %d memory bits but costs %.0fx throughput\n",
		enc.Fit.MemoryBits-w8.Fit.MemoryBits, enc.ThroughputMbps()/w8.ThroughputMbps())
	fmt.Println("(and even spends MORE logic on its byte-select muxes — §6's point)")
	fmt.Println()

	// A smartcard-style challenge-response: encrypt a challenge under a
	// personalization key on the chosen encrypt-only core.
	personalizationKey := []byte("card-master-key!")
	challenge := []byte("AUTH-CHALLENGE-1")

	drv := enc.NewDriver()
	if _, err := drv.LoadKey(personalizationKey); err != nil {
		log.Fatal(err)
	}
	response, cycles, err := drv.Encrypt(challenge)
	if err != nil {
		log.Fatal(err)
	}
	ref, _ := rijndaelip.NewCipher(personalizationKey)
	want := make([]byte, 16)
	ref.Encrypt(want, challenge)
	if !bytes.Equal(response, want) {
		log.Fatal("response does not match the reference")
	}
	fmt.Printf("challenge-response: %x -> %x in %d cycles (%.1f us at %.2f ns clk)\n",
		challenge, response, cycles,
		float64(cycles)*enc.ClockNS()/1000, enc.ClockNS())
}
