// Backbone: the paper's high-load scenario — a communication channel or
// heavily loaded server that cannot afford software cryptography. The
// combined encrypt/decrypt core streams a burst of blocks in each
// direction; the decoupled Data In / Out processes (Fig. 8) let a new
// block load while the previous one is processed, so the sustained rate
// approaches the 50-cycle block latency. The run compares the Acex1K and
// Cyclone builds and the synchronous-ROM future-work variant.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"rijndaelip"
	"rijndaelip/internal/rtl"
)

func main() {
	key := make([]byte, 16)
	rng := rand.New(rand.NewSource(2003))
	rng.Read(key)

	const nBlocks = 32
	plain := make([][]byte, nBlocks)
	for i := range plain {
		plain[i] = make([]byte, 16)
		rng.Read(plain[i])
	}

	type build struct {
		name string
		dev  rijndaelip.Device
		opts []rijndaelip.Options
	}
	sync := rtl.ROMSync
	builds := []build{
		{"Acex1K (EAB S-boxes)", rijndaelip.Acex1K(), nil},
		{"Cyclone (logic S-boxes)", rijndaelip.Cyclone(), nil},
		{"Cyclone (sync M4K, future work)", rijndaelip.Cyclone(),
			[]rijndaelip.Options{{ROMStyle: &sync}}},
	}

	ref, err := rijndaelip.NewCipher(key)
	if err != nil {
		log.Fatal(err)
	}

	for _, bl := range builds {
		impl, err := rijndaelip.Build(rijndaelip.Both, bl.dev, bl.opts...)
		if err != nil {
			log.Fatal(err)
		}
		drv := impl.NewDriver()
		if _, err := drv.LoadKey(key); err != nil {
			log.Fatal(err)
		}

		// Encrypt the burst, streaming with load overlap.
		cts, encRes, err := drv.Stream(plain, true)
		if err != nil {
			log.Fatal(err)
		}
		// Verify and decrypt it back through the same device.
		for i, ct := range cts {
			want := make([]byte, 16)
			ref.Encrypt(want, plain[i])
			if !bytes.Equal(ct, want) {
				log.Fatalf("%s: block %d mismatch", bl.name, i)
			}
		}
		pts, _, err := drv.Stream(cts, false)
		if err != nil {
			log.Fatal(err)
		}
		for i := range pts {
			if !bytes.Equal(pts[i], plain[i]) {
				log.Fatalf("%s: decrypt round-trip failed at block %d", bl.name, i)
			}
		}

		sustained := 128 / (encRes.CyclesPerBlock * impl.ClockNS()) * 1000
		fmt.Printf("%-32s clk %5.2f ns | %5.1f cycles/block sustained | %4.0f Mbps sustained (single-block: %4.0f Mbps)\n",
			bl.name, impl.ClockNS(), encRes.CyclesPerBlock, sustained, impl.ThroughputMbps())
	}
	fmt.Printf("\n%d blocks encrypted and decrypted correctly on every build\n", nBlocks)
}
