// Securechannel: authenticated encryption where every block-cipher call
// is a full bus transaction against the cycle-accurate simulation of the
// IP. GCM (and a CMAC tag) run as software protocols over the simulated
// hardware, exactly how the paper's core would be deployed behind a
// protocol stack — and the result is cross-checked against the Go
// standard library's GCM over the software reference cipher.
package main

import (
	"bytes"
	stdcipher "crypto/cipher"
	"fmt"
	"log"

	"rijndaelip"
	"rijndaelip/internal/modes"
)

func main() {
	impl, err := rijndaelip.Build(rijndaelip.Both, rijndaelip.Acex1K())
	if err != nil {
		log.Fatal(err)
	}
	key := []byte("session-key-2003")
	hw, err := impl.NewHardwareBlock(key)
	if err != nil {
		log.Fatal(err)
	}

	gcm, err := modes.NewGCM(hw)
	if err != nil {
		log.Fatal(err)
	}
	nonce := []byte("unique-nonce")
	message := []byte("DATE'03 reproduction: this message is sealed by the simulated Rijndael IP core.")
	header := []byte("channel-7")

	sealed, err := gcm.Seal(nonce, message, header)
	if err != nil {
		log.Fatal(err)
	}
	if hw.Err() != nil {
		log.Fatal(hw.Err())
	}
	fmt.Printf("sealed %d bytes -> %d bytes (tag included)\n", len(message), len(sealed))
	fmt.Printf("hardware cycles spent: %d (%.1f us at %.2f ns clk)\n",
		hw.Cycles, float64(hw.Cycles)*impl.ClockNS()/1000, impl.ClockNS())

	// Cross-check against the standard library over the software cipher.
	sw, err := rijndaelip.NewCipher(key)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := stdcipher.NewGCM(sw)
	if err != nil {
		log.Fatal(err)
	}
	want := ref.Seal(nil, nonce, message, header)
	if !bytes.Equal(sealed, want) {
		log.Fatal("hardware-backed GCM disagrees with the reference")
	}
	fmt.Println("ciphertext+tag match crypto/cipher GCM over the software reference")

	// Receiver side: open through the hardware too.
	back, err := gcm.Open(nonce, sealed, header)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(back, message) {
		log.Fatal("round trip failed")
	}
	fmt.Printf("opened: %q\n", back)

	// Tampering is caught.
	sealed[3] ^= 0x80
	if _, err := gcm.Open(nonce, sealed, header); err == nil {
		log.Fatal("tampered message accepted")
	}
	fmt.Println("tampered message rejected by the authentication tag")

	// A CMAC over the same hardware, for key-diversification flows.
	mac, err := modes.CMAC(hw, []byte("device-serial-0001"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardware CMAC(device-serial-0001) = %x\n", mac)
}
