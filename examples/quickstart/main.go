// Quickstart: build the paper's encrypt-only AES-128 IP for the Acex1K
// device, push one block through the cycle-accurate simulation, and check
// the result against the FIPS-197 software reference.
package main

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"log"

	"rijndaelip"
)

func main() {
	// 1. Run the full flow: core generation -> AIG synthesis -> 4-LUT
	// technology mapping -> fitting on EP1K100FC484-1 -> static timing.
	impl, err := rijndaelip.Build(rijndaelip.Encrypt, rijndaelip.Acex1K())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device %s\n", impl.Device.Name)
	fmt.Printf("  logic cells : %d (%.0f%%)\n", impl.Fit.LogicCells, impl.Fit.LEPercent())
	fmt.Printf("  memory bits : %d (%.0f%%)\n", impl.Fit.MemoryBits, impl.Fit.MemPercent())
	fmt.Printf("  pins        : %d (%.0f%%)\n", impl.Fit.Pins, impl.Fit.PinPercent())
	fmt.Printf("  clock       : %.2f ns (%.1f MHz)\n", impl.ClockNS(), impl.Timing.FmaxMHz)
	fmt.Printf("  latency     : %d cycles = %.0f ns\n", impl.Core.BlockLatency, impl.LatencyNS())
	fmt.Printf("  throughput  : %.0f Mbps\n\n", impl.ThroughputMbps())

	// 2. Drive the Table 1 bus interface of the simulated IP.
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	plaintext, _ := hex.DecodeString("3243f6a8885a308d313198a2e0370734")

	drv := impl.NewDriver()
	if _, err := drv.LoadKey(key); err != nil {
		log.Fatal(err)
	}
	ciphertext, cycles, err := drv.Encrypt(plaintext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plaintext : %x\n", plaintext)
	fmt.Printf("ciphertext: %x  (%d cycles)\n", ciphertext, cycles)

	// 3. Cross-check with the from-scratch software reference.
	ref, err := rijndaelip.NewCipher(key)
	if err != nil {
		log.Fatal(err)
	}
	want := make([]byte, 16)
	ref.Encrypt(want, plaintext)
	if !bytes.Equal(ciphertext, want) {
		log.Fatalf("hardware disagrees with FIPS-197 reference: %x", want)
	}
	fmt.Println("matches the FIPS-197 software reference")
}
